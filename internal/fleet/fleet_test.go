package fleet

// The fleet equivalence suite: the package's determinism contract, enforced.
// This is the fleet analog of the sim package's TestEngineEquivalenceMatrix —
// every guarantee the package doc claims is pinned by a test here:
// shard-count invariance, single-chassis degenerate equivalence against plain
// sim.Run, dispatcher pick-sequence determinism, chassis-permutation
// invariance, round-robin balance, and warm-start/cold equivalence.

import (
	"reflect"
	"runtime"
	"testing"

	"densim/internal/scenario"
	"densim/internal/sim"
)

// testChassis is the small fleet member every test composes: 8 sockets
// (2 rows x 2 lanes x 2 zones), enough thermal coupling to be non-trivial,
// small enough that a multi-chassis fleet run stays fast.
func testScenario(fl *scenario.Fleet) *scenario.Scenario {
	return &scenario.Scenario{
		Version:   scenario.CurrentVersion,
		Name:      "fleet-test",
		Topology:  scenario.Topology{Rows: 2, Lanes: 2, Depth: 2},
		Airflow:   scenario.Airflow{AuxPerSocketW: 10},
		Workload:  scenario.Workload{Class: "GP", Load: 0.5},
		Scheduler: scenario.Scheduler{Name: "CP"},
		Run:       scenario.Run{Seeds: []uint64{1}, DurationS: 5},
		Fleet:     fl,
	}
}

func uniformFleet(n int, dispatcher string) *scenario.Scenario {
	return testScenario(&scenario.Fleet{
		Dispatcher: dispatcher,
		Chassis:    []scenario.FleetChassis{{Rack: 0, Chassis: 0, Count: n}},
	})
}

func mustRun(t *testing.T, sc *scenario.Scenario, seed uint64, cfgFn func(*Fleet)) *Result {
	t.Helper()
	f, err := New(sc, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if cfgFn != nil {
		cfgFn(f)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// sameResult compares two fleet results for bit identity, ignoring the
// recorded worker count (the one field that is allowed to differ).
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ca, cb := *a, *b
	ca.Workers, cb.Workers = 0, 0
	if !reflect.DeepEqual(ca, cb) {
		t.Errorf("%s: fleet results differ\n a: %+v\n b: %+v", label, ca, cb)
	}
}

// TestFleetOfOneEquivalence: a fleet of one chassis must reproduce plain
// sim.Run over the same scenario bit for bit — aggregate, chassis result,
// and job accounting. This pins the fleet stream generator to the simulator's
// live arrival source and the replay path to the live path.
func TestFleetOfOneEquivalence(t *testing.T) {
	for _, disp := range scenario.FleetDispatchers() {
		sc := uniformFleet(1, disp)
		res := mustRun(t, sc, 1, nil)

		plain := *sc
		plain.Fleet = nil
		cfg, err := plain.Config(1)
		if err != nil {
			t.Fatalf("Config: %v", err)
		}
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		want := s.Run()

		if !reflect.DeepEqual(res.Aggregate, want) {
			t.Errorf("%s: fleet-of-one aggregate != plain sim.Run\n fleet: %+v\n plain: %+v", disp, res.Aggregate, want)
		}
		if !reflect.DeepEqual(res.Chassis[0].Result, want) {
			t.Errorf("%s: chassis result != plain sim.Run", disp)
		}
		if res.Chassis[0].Arrived != s.Arrived() || res.Chassis[0].Unfinished != s.Unfinished() {
			t.Errorf("%s: accounting differs: fleet arrived=%d unfinished=%d, plain arrived=%d unfinished=%d",
				disp, res.Chassis[0].Arrived, res.Chassis[0].Unfinished, s.Arrived(), s.Unfinished())
		}
	}
}

// TestFleetShardCountInvariance: the worker pool bound may change wall-clock
// time only. 1 worker, 4 workers, and GOMAXPROCS workers must produce
// byte-identical results — the CI runs this test under -race, which also
// makes it the data-race oracle for the pool.
func TestFleetShardCountInvariance(t *testing.T) {
	sc := testScenario(&scenario.Fleet{
		Dispatcher: "thermal",
		Chassis: []scenario.FleetChassis{
			{Rack: 0, Chassis: 0, Count: 3},
			{Rack: 1, Chassis: 0, Count: 3, InletC: 24},
		},
	})
	base := mustRun(t, sc, 1, func(f *Fleet) { f.SetWorkers(1) })
	if base.Workers != 1 {
		t.Fatalf("workers = %d, want 1", base.Workers)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		res := mustRun(t, sc, 1, func(f *Fleet) { f.SetWorkers(w) })
		sameResult(t, "workers", base, res)
	}
}

// TestDispatcherPickSequenceDeterminism: the pick sequence is a pure
// function of (policy, fleet, stream) — two identical runs replay it
// exactly, and each policy's structural signature holds.
func TestDispatcherPickSequenceDeterminism(t *testing.T) {
	for _, disp := range scenario.FleetDispatchers() {
		sc := testScenario(&scenario.Fleet{
			Dispatcher: disp,
			Chassis: []scenario.FleetChassis{
				{Rack: 0, Chassis: 0, Count: 2},
				{Rack: 1, Chassis: 0, Count: 2, InletC: 24},
			},
		})
		a := mustRun(t, sc, 1, nil)
		b := mustRun(t, sc, 1, nil)
		if len(a.Picks) == 0 {
			t.Fatalf("%s: empty pick sequence", disp)
		}
		if !reflect.DeepEqual(a.Picks, b.Picks) {
			t.Errorf("%s: pick sequence not deterministic", disp)
		}
		for k, p := range a.Picks {
			if p < 0 || p >= len(a.Chassis) {
				t.Fatalf("%s: pick %d out of range: %d", disp, k, p)
			}
		}
		switch disp {
		case "round-robin":
			for k, p := range a.Picks {
				if p != k%len(a.Chassis) {
					t.Fatalf("round-robin pick %d = %d, want %d", k, p, k%len(a.Chassis))
				}
			}
		case "thermal":
			// An empty fleet ranks purely on ambient headroom: the first
			// job must land on a cool (rack 0) chassis, and the lowest
			// index among them by the tie-break rule.
			if a.Picks[0] != 0 {
				t.Errorf("thermal first pick = %d, want 0 (coolest, lowest index)", a.Picks[0])
			}
		case "least-loaded":
			// An empty fleet is uniformly unloaded: the tie-break sends
			// the first job to chassis 0.
			if a.Picks[0] != 0 {
				t.Errorf("least-loaded first pick = %d, want 0 (tie-break)", a.Picks[0])
			}
		}
	}
}

// TestFleetChassisPermutationInvariance: declaration order of fleet entries
// must not affect anything — chassis are canonically (rack, slot) ordered
// before dispatch. The metamorphic transform is a permutation of the chassis
// list; the invariant is bit-identity of the full result.
func TestFleetChassisPermutationInvariance(t *testing.T) {
	fwd := testScenario(&scenario.Fleet{
		Dispatcher: "thermal",
		Chassis: []scenario.FleetChassis{
			{Rack: 0, Chassis: 0, Count: 2},
			{Rack: 1, Chassis: 0, Count: 2, InletC: 24},
		},
	})
	rev := testScenario(&scenario.Fleet{
		Dispatcher: "thermal",
		Chassis: []scenario.FleetChassis{
			{Rack: 1, Chassis: 1, InletC: 24},
			{Rack: 0, Chassis: 1},
			{Rack: 1, Chassis: 0, InletC: 24},
			{Rack: 0, Chassis: 0},
		},
	})
	a := mustRun(t, fwd, 1, nil)
	b := mustRun(t, rev, 1, nil)
	sameResult(t, "permutation", a, b)
}

// TestRoundRobinBalance: round-robin over identical chassis splits the
// stream as evenly as arithmetic allows — per-chassis Dispatched within ±1 —
// and when every chassis drains fully, Completed inherits the same ±1 bound.
// The warmup is shrunk to a sliver: completions inside the warmup window are
// (correctly) excluded from Result.Completed, which would blur the exact
// bound this test pins.
func TestRoundRobinBalance(t *testing.T) {
	sc := uniformFleet(4, "round-robin")
	sc.Run.WarmupS = 0.001
	res := mustRun(t, sc, 1, nil)
	minD, maxD := res.Chassis[0].Dispatched, res.Chassis[0].Dispatched
	minC, maxC := res.Chassis[0].Result.Completed, res.Chassis[0].Result.Completed
	for _, cr := range res.Chassis {
		if cr.Unfinished != 0 {
			t.Fatalf("chassis %s left %d jobs unfinished; balance bound needs a full drain", cr.Name(), cr.Unfinished)
		}
		if cr.Dispatched < minD {
			minD = cr.Dispatched
		}
		if cr.Dispatched > maxD {
			maxD = cr.Dispatched
		}
		if cr.Result.Completed < minC {
			minC = cr.Result.Completed
		}
		if cr.Result.Completed > maxC {
			maxC = cr.Result.Completed
		}
	}
	if maxD-minD > 1 {
		t.Errorf("round-robin dispatched spread = %d, want <= 1", maxD-minD)
	}
	if maxC-minC > 1 {
		t.Errorf("round-robin completed spread = %d, want <= 1", maxC-minC)
	}
	if res.Aggregate.Completed == 0 {
		t.Error("fleet completed no jobs")
	}
}

// TestFleetWarmStartEquivalence: the per-chassis warm-start cache is a pure
// accelerator. A cold run, a cache-filling run, and a cache-hitting run must
// all be byte-identical.
func TestFleetWarmStartEquivalence(t *testing.T) {
	sc := testScenario(&scenario.Fleet{
		Dispatcher: "least-loaded",
		Chassis: []scenario.FleetChassis{
			{Rack: 0, Chassis: 0, Count: 2},
			{Rack: 0, Chassis: 2, InletC: 24},
		},
	})
	cold := mustRun(t, sc, 1, nil)
	dir := t.TempDir()
	fill := mustRun(t, sc, 1, func(f *Fleet) { f.WarmDir = dir })
	hit := mustRun(t, sc, 1, func(f *Fleet) { f.WarmDir = dir })
	sameResult(t, "cold vs fill", cold, fill)
	sameResult(t, "cold vs hit", cold, hit)
}

// TestFleetSeedSensitivity: different fleet seeds must produce different
// streams (a degenerate stream() would pass every equivalence test above by
// being constant).
func TestFleetSeedSensitivity(t *testing.T) {
	sc := uniformFleet(2, "round-robin")
	a := mustRun(t, sc, 1, nil)
	b := mustRun(t, sc, 2, nil)
	if reflect.DeepEqual(a.Aggregate, b.Aggregate) {
		t.Error("seeds 1 and 2 produced identical aggregates")
	}
}

// TestFleetHeterogeneousRefs: chassis refs pull their own hardware (here a
// preset) while the template's workload and windows are forced onto them —
// the shared-stream contract.
func TestFleetHeterogeneousRefs(t *testing.T) {
	sc := testScenario(&scenario.Fleet{
		Chassis: []scenario.FleetChassis{
			{Rack: 0, Chassis: 0},
			{Rack: 0, Chassis: 1, Scenario: "half-density-90"},
		},
	})
	f, err := New(sc, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	chs := f.Chassis()
	if chs[0].Sockets != 8 || chs[1].Sockets != 90 {
		t.Fatalf("sockets = %d,%d, want 8,90", chs[0].Sockets, chs[1].Sockets)
	}
	for _, ch := range chs {
		if got := ch.Scenario.Run.DurationS; got != sc.Run.DurationS {
			t.Errorf("chassis %s duration %v, want template's %v (shared windows)", ch.Name(), got, sc.Run.DurationS)
		}
		if got := ch.Scenario.Workload.Load; got != sc.Workload.Load {
			t.Errorf("chassis %s load %v, want template's %v (shared stream)", ch.Name(), got, sc.Workload.Load)
		}
	}
}

// TestFleetNewRejects pins New's own validation layer (beyond the scenario
// block's): no fleet block, nested fleets, chassis snapshot blocks.
func TestFleetNewRejects(t *testing.T) {
	sc := testScenario(nil)
	if _, err := New(sc, 1); err == nil {
		t.Error("New accepted a scenario without a fleet block")
	}
	ref := uniformFleet(2, "")
	ref.Fleet.Chassis[0].Scenario = "fleet-2x2"
	if _, err := New(ref, 1); err == nil {
		t.Error("New accepted a nested fleet ref")
	}
}
