// Package fleet scales the simulator out one level: racks x chassis of
// independent deterministic sim instances behind a fleet-level dispatcher
// that splits a single shared arrival stream across chassis before any
// intra-chassis scheduler runs. It is the paper's density question re-posed
// at datacenter scale — does thermal awareness pay when routing jobs *to* a
// chassis, before the in-chassis scheduler ever sees them?
//
// Determinism is the package's contract, built from three mechanisms:
//
//  1. The fleet arrival stream is generated once, serially, by draining the
//     same Poisson process a single simulator over the combined socket count
//     would consume — so a fleet of one chassis replays the exact arrival
//     sequence of a plain sim.Run and produces its bit-identical Result.
//  2. Dispatch is a serial pass over that stream with a deterministic
//     policy; each chassis receives a frozen replay slice before any
//     simulation starts.
//  3. Chassis simulate in a bounded worker pool writing into a
//     position-indexed results slice, and the fleet aggregate is an ordered
//     reduction over that slice (metrics.Aggregate) — the worker count can
//     change wall-clock time only, never a byte of the result.
//
// Fleets run in one of two loop modes. Open loop (the default, and the only
// mode before the epoch executor existed) dispatches the entire stream before
// any chassis simulates, over estimated chassis state. Closed loop (a
// fleet.epoch block, epoch.go) interleaves dispatch and simulation in
// tick-aligned epochs: each boundary, the dispatcher observes every chassis's
// true state through sim.Observe and routes the next window over what it saw.
// Determinism survives the feedback because each epoch repeats the same
// serial-dispatch / parallel-step / serial-observe shape — the worker pool
// still only parallelizes simulation between two serial fences.
//
// The fleet equivalence suite (fleet_test.go, epoch_test.go) holds the
// package to exactly that standard, the way TestEngineEquivalenceMatrix holds
// the engines.
package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"densim/internal/check"
	"densim/internal/metrics"
	"densim/internal/scenario"
	"densim/internal/sim"
	"densim/internal/stats"
	"densim/internal/telemetry"
	"densim/internal/units"
	"densim/internal/workload"
)

// Chassis is one resolved fleet member: an independent simulated server with
// its own scenario (topology, SKUs, faults, scheduler), sharing only the
// fleet arrival stream and run windows.
type Chassis struct {
	// Rack and Slot locate the chassis in the fleet grid.
	Rack, Slot int
	// Scenario is the chassis's resolved run specification: the fleet
	// entry's ref (or the template) with the template's workload and windows
	// applied and any inlet override folded in.
	Scenario *scenario.Scenario
	// Sockets is the chassis's socket count (its share weight in the
	// dispatcher's utilization estimates).
	Sockets int
	// Inlet is the chassis's effective inlet temperature — the thermal
	// dispatcher's headroom input.
	Inlet units.Celsius
}

// Name returns the chassis's fleet-grid label ("r0c1").
func (c *Chassis) Name() string { return fmt.Sprintf("r%dc%d", c.Rack, c.Slot) }

// Fleet is a resolved, runnable fleet. Build with New; the optional fields
// may be set before Run.
type Fleet struct {
	// WarmDir enables the per-chassis warm-start cache: each chassis's
	// warmup state is cached keyed by its snapshot signature (which includes
	// its replay-stream identity), exactly like experiments.SimOptions'
	// WarmDir. Results are bit-identical either way. Checked or
	// telemetry-instrumented chassis always run cold, and closed-loop runs
	// ignore WarmDir entirely — a chassis's stream is only discovered epoch
	// by epoch, so there is no replay identity to key a cache on.
	WarmDir string
	// Telemetry instruments every chassis, each labeled with its grid name
	// ("r0c1"), including the per-chassis dispatched counter. Nil disables.
	Telemetry *telemetry.Set
	// Checked runs every chassis under the runtime invariant harness even
	// when its scenario does not ask for it.
	Checked bool

	template   *scenario.Scenario
	chassis    []Chassis
	dispatcher string
	workers    int
	seed       uint64
	epoch      units.Seconds // closed-loop epoch period; 0 = open loop
	tick       units.Seconds // resolved tick period (epoch boundary quantum)
}

// New resolves a scenario's fleet block into a runnable Fleet. The scenario
// is the template: chassis entries without a ref simulate it, and its
// workload, load, seeds, and windows define the shared arrival stream for
// every chassis (a fleet shares one job population by construction; chassis
// refs contribute hardware — topology, airflow, chip, SKUs, faults — and
// their own schedulers). Chassis are canonically ordered by (rack, slot), so
// declaration order never affects routing.
func New(sc *scenario.Scenario, seed uint64) (*Fleet, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Fleet == nil {
		return nil, fmt.Errorf("fleet: scenario %q has no fleet block", sc.Name)
	}
	template := *sc
	template.Fleet = nil
	f := &Fleet{
		template:   &template,
		dispatcher: sc.Fleet.Dispatcher,
		workers:    sc.Fleet.Workers,
		seed:       seed,
	}
	for i := range sc.Fleet.Chassis {
		entry := &sc.Fleet.Chassis[i]
		for k := 0; k < entryCount(entry); k++ {
			ch, err := f.resolveChassis(entry, entry.Chassis+k)
			if err != nil {
				return nil, fmt.Errorf("fleet: entry %d (rack %d chassis %d): %w", i, entry.Rack, entry.Chassis+k, err)
			}
			f.chassis = append(f.chassis, ch)
		}
	}
	sort.Slice(f.chassis, func(a, b int) bool {
		if f.chassis[a].Rack != f.chassis[b].Rack {
			return f.chassis[a].Rack < f.chassis[b].Rack
		}
		return f.chassis[a].Slot < f.chassis[b].Slot
	})
	// The dispatcher name was validated declaratively; building it here
	// surfaces any drift between the two layers at New time (both loop
	// variants, so a policy missing its closed-loop form fails at New).
	if _, err := newDispatcher(f.dispatcher, f.chassis); err != nil {
		return nil, err
	}
	if _, err := newClosedDispatcher(f.dispatcher, f.chassis); err != nil {
		return nil, err
	}
	if sc.Fleet.Epoch != nil && sc.Fleet.Epoch.PeriodS > 0 {
		f.epoch = units.Seconds(sc.Fleet.Epoch.PeriodS)
		// Layer-2 alignment check, against the *resolved* tick period this
		// time (the declarative layer could only see the scenario's own
		// numbers; here withDefaults-equivalent resolution has happened).
		cfg, err := f.template.Config(seed)
		if err != nil {
			return nil, err
		}
		tick := float64(cfg.TickPeriod)
		if tick <= 0 {
			tick = scenario.DefaultTickPeriodS
		}
		if !scenario.EpochAligned(float64(f.epoch), tick) {
			return nil, fmt.Errorf("fleet: epoch period %gs is not a multiple of the tick period %gs", float64(f.epoch), tick)
		}
		f.tick = units.Seconds(tick)
	}
	return f, nil
}

// entryCount mirrors the scenario layer's default of 1.
func entryCount(c *scenario.FleetChassis) int {
	if c.Count == 0 {
		return 1
	}
	return c.Count
}

// resolveChassis materializes one fleet slot from its declarative entry.
func (f *Fleet) resolveChassis(entry *scenario.FleetChassis, slot int) (Chassis, error) {
	var sc *scenario.Scenario
	if entry.Scenario == "" {
		cp := *f.template
		sc = &cp
	} else {
		loaded, err := scenario.Load(entry.Scenario)
		if err != nil {
			return Chassis{}, err
		}
		if loaded.Fleet != nil {
			return Chassis{}, fmt.Errorf("chassis scenario %q carries its own fleet block (fleets do not nest)", loaded.Name)
		}
		if loaded.Snapshot.Save != "" || loaded.Snapshot.Load != "" {
			return Chassis{}, fmt.Errorf("chassis scenario %q carries a snapshot block (use the fleet warm-start cache instead)", loaded.Name)
		}
		sc = loaded
	}
	// The fleet shares one job population and one set of windows: the
	// template's workload and run blocks override the chassis ref's. A
	// chassis-level trace would fork the population, so it is overridden
	// away with the rest of the workload block.
	sc.Workload = f.template.Workload
	sc.Run = f.template.Run
	if entry.InletC != 0 {
		sc.Airflow.InletC = entry.InletC
	}
	if err := sc.Validate(); err != nil {
		return Chassis{}, err
	}
	srv, err := sc.Server()
	if err != nil {
		return Chassis{}, err
	}
	// Probe the full config once so Run-time assembly cannot fail.
	if _, err := sc.Config(f.seed); err != nil {
		return Chassis{}, err
	}
	return Chassis{
		Rack:     entry.Rack,
		Slot:     slot,
		Scenario: sc,
		Sockets:  srv.NumSockets(),
		Inlet:    sc.AirflowParams().Inlet,
	}, nil
}

// Chassis returns the canonically ordered fleet members. Callers must not
// mutate the slice.
func (f *Fleet) Chassis() []Chassis { return f.chassis }

// Dispatcher returns the resolved dispatcher policy name.
func (f *Fleet) Dispatcher() string {
	if f.dispatcher == "" {
		return "round-robin"
	}
	return f.dispatcher
}

// SetWorkers overrides the fleet block's worker bound (0 restores the
// default: the block's value, else GOMAXPROCS).
func (f *Fleet) SetWorkers(n int) { f.workers = n }

// Epoch returns the closed-loop epoch period, or 0 for an open-loop fleet.
func (f *Fleet) Epoch() units.Seconds { return f.epoch }

// workerCount resolves the effective pool size.
func (f *Fleet) workerCount() int {
	w := f.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(f.chassis) {
		w = len(f.chassis)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Ledger aggregates the fault machinery's side effects. Per chassis it
// mirrors core.FaultStats; fleet-wide the energies and counts sum and
// FlowFactor reports the worst (minimum) chassis — the fleet is as starved
// as its most starved member.
type Ledger struct {
	// FanEnergyJ is the chassis fan bank's electrical energy.
	FanEnergyJ float64
	// Requeues counts jobs displaced by socket-death events.
	Requeues int
	// DeadSockets counts sockets lost by the end of the run.
	DeadSockets int
	// FlowFactor is the delivered/required airflow ratio at end of run.
	FlowFactor float64
	// Faulted counts chassis carrying fault timelines (fleet-wide ledger
	// only; 1 on a per-chassis ledger).
	Faulted int
}

// ChassisResult is one chassis's share of a fleet run.
type ChassisResult struct {
	// Rack and Slot locate the chassis; Scenario names its spec.
	Rack, Slot int
	Scenario   string
	Sockets    int
	// Inlet is the effective inlet temperature.
	Inlet units.Celsius
	// Dispatched counts the fleet arrivals routed here; Arrived counts the
	// jobs the chassis simulator admitted (the closure audit requires them
	// equal); Unfinished counts jobs still in flight when the drain limit
	// hit.
	Dispatched, Arrived, Unfinished int
	// Result is the chassis's own metrics.
	Result metrics.Result
	// Ledger is the chassis's fault ledger, nil when it has no timeline.
	Ledger *Ledger
	// EstErr is the accumulated |estimated − observed| in-flight divergence
	// of the shadow open-loop estimator at each epoch boundary — how far the
	// PR-8 pipeline's picture of this chassis drifted from what a closed-loop
	// observer actually saw. Always 0 on open-loop runs (nothing observes).
	EstErr int
}

// Name returns the chassis's fleet-grid label ("r0c1").
func (r *ChassisResult) Name() string { return fmt.Sprintf("r%dc%d", r.Rack, r.Slot) }

// Result is the outcome of one fleet run.
type Result struct {
	// Aggregate is the fleet-wide merged result (metrics.Aggregate over the
	// chassis results in canonical order).
	Aggregate metrics.Result
	// Chassis holds the per-chassis results in canonical (rack, slot)
	// order.
	Chassis []ChassisResult
	// Picks is the dispatcher's routing sequence: Picks[k] is the chassis
	// index (into Chassis) that fleet arrival k was routed to.
	Picks []int
	// Dispatcher and Workers record what actually ran.
	Dispatcher string
	Workers    int
	// Ledger is the fleet-wide fault ledger (zero when no chassis carries a
	// timeline).
	Ledger Ledger
	// Epochs counts the closed-loop epochs stepped (0 on open-loop runs) and
	// EpochS records the epoch period that ran.
	Epochs int
	EpochS units.Seconds
	// EpochStarts indexes the pick sequence by epoch: EpochStarts[k] is the
	// offset in Picks where epoch k's dispatch window begins, so
	// Picks[EpochStarts[k]:EpochStarts[k+1]] is exactly what the dispatcher
	// routed between boundaries k and k+1. Nil on open-loop runs.
	EpochStarts []int
}

// stream drains the fleet arrival process up to the template's horizon: the
// same mix, combined socket count, load, and seed a single simulator over
// the whole fleet would consume lazily. For a fleet of one chassis this is
// bit-for-bit the sequence plain sim.Run would generate.
func (f *Fleet) stream() ([]arrival, units.Seconds, error) {
	cfg, err := f.template.Config(f.seed)
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for i := range f.chassis {
		total += f.chassis[i].Sockets
	}
	src := workload.NewArrivals(cfg.Mix, total, cfg.Load, stats.NewRNG(f.seed))
	var out []arrival
	for src.Peek() < cfg.Duration {
		at, b, nominal := src.Next()
		out = append(out, arrival{at: at, bench: b, nominal: nominal})
	}
	return out, cfg.Duration, nil
}

// chassisOut is one worker's result slot.
type chassisOut struct {
	res        metrics.Result
	arrived    int
	unfinished int
	ledger     *Ledger
	estErr     int
	err        error
}

// parallelEach runs fn(0..n-1) across a bounded worker pool — the fleet's one
// concurrency primitive, shared by the open-loop pipeline and every epoch
// step. Worker w owns the contiguous batch [w*n/W, (w+1)*n/W): no shared jobs
// channel, no per-item handoff, and position-indexed outputs land in
// contiguous runs per worker (adjacent slots share a writer except at batch
// boundaries, so result buffers don't ping-pong between caches). The epoch
// executor calls this once per epoch step, where per-item channel sends —
// one synchronized wakeup per chassis per step — used to dominate the short
// RunTo windows and drag the 4-worker run below the 1-worker baseline.
// workers <= 1 runs inline, which keeps single-worker runs trivially serial
// (and makes the shard-count invariance oracle meaningful).
func parallelEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes the fleet. Open loop: generate the stream, dispatch it
// serially over estimated state, shard the chassis across the worker pool,
// and reduce in canonical order. Closed loop (fleet.epoch set): hand the
// stream to the epoch executor, which interleaves observation, dispatch, and
// tick-aligned RunTo windows until the horizon, then drains. Both paths end
// in the same ordered reduction and closure audit (assemble).
func (f *Fleet) Run() (*Result, error) {
	stream, horizon, err := f.stream()
	if err != nil {
		return nil, err
	}
	if f.epoch > 0 {
		return f.runEpochs(stream, horizon)
	}
	d, err := newDispatcher(f.dispatcher, f.chassis)
	if err != nil {
		return nil, err
	}
	assigns, picks := dispatch(d, stream, len(f.chassis))

	// Bounded worker pool over a position-indexed output slice: workers
	// race only on the jobs channel, never on results, and the reduction
	// below walks outs in canonical chassis order.
	outs := make([]chassisOut, len(f.chassis))
	workers := f.workerCount()
	parallelEach(workers, len(f.chassis), func(i int) {
		outs[i] = f.runChassis(i, assigns[i])
	})

	dispatched := make([]int, len(f.chassis))
	for i := range assigns {
		dispatched[i] = len(assigns[i])
	}
	res := &Result{
		Picks:      picks,
		Dispatcher: f.Dispatcher(),
		Workers:    workers,
	}
	return f.assemble(len(stream), dispatched, outs, res)
}

// assemble is the ordered reduction both loop modes share: fold the
// position-indexed chassis outputs into per-chassis results, merge the fault
// ledgers, audit the fleet-level closure, and aggregate. streamed and
// dispatched feed the closure audit; res arrives carrying the loop-specific
// fields (picks, workers, epoch accounting) already set.
func (f *Fleet) assemble(streamed int, dispatched []int, outs []chassisOut, res *Result) (*Result, error) {
	var errs []error
	results := make([]metrics.Result, 0, len(f.chassis))
	arrived := make([]int, len(f.chassis))
	completed := make([]int, len(f.chassis))
	unfinished := make([]int, len(f.chassis))
	for i := range f.chassis {
		ch := &f.chassis[i]
		out := &outs[i]
		if out.err != nil {
			errs = append(errs, fmt.Errorf("chassis %s: %w", ch.Name(), out.err))
			continue
		}
		results = append(results, out.res)
		arrived[i] = out.arrived
		completed[i] = out.res.Completed
		unfinished[i] = out.unfinished
		cr := ChassisResult{
			Rack:       ch.Rack,
			Slot:       ch.Slot,
			Scenario:   ch.Scenario.Name,
			Sockets:    ch.Sockets,
			Inlet:      ch.Inlet,
			Dispatched: dispatched[i],
			Arrived:    out.arrived,
			Unfinished: out.unfinished,
			Result:     out.res,
			Ledger:     out.ledger,
			EstErr:     out.estErr,
		}
		res.Chassis = append(res.Chassis, cr)
		if out.ledger != nil {
			res.Ledger.FanEnergyJ += out.ledger.FanEnergyJ
			res.Ledger.Requeues += out.ledger.Requeues
			res.Ledger.DeadSockets += out.ledger.DeadSockets
			res.Ledger.Faulted++
			if res.Ledger.Faulted == 1 || out.ledger.FlowFactor < res.Ledger.FlowFactor {
				res.Ledger.FlowFactor = out.ledger.FlowFactor
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	// The fleet-level closure audit: every dispatched job arrived at its
	// chassis and the per-chassis accounting adds up. A violation here is a
	// routing or replay bug, not a simulation result.
	if err := check.FleetClosure(streamed, dispatched, arrived, completed, unfinished); err != nil {
		return nil, err
	}
	res.Aggregate = metrics.Aggregate(results)
	return res, nil
}

// runChassis simulates one chassis over its dispatched slice.
func (f *Fleet) runChassis(i int, assigned []arrival) chassisOut {
	ch := &f.chassis[i]
	cfg, err := ch.Scenario.Config(f.seed)
	if err != nil {
		return chassisOut{err: err}
	}
	cfg.Source = newReplaySource(assigned)
	var h *check.Checks
	if ch.Scenario.Checks || f.Checked {
		h = check.New()
		cfg.Checks = h
	}
	if f.Telemetry != nil {
		tel := f.Telemetry.For(ch.Name())
		for range assigned {
			tel.OnDispatch()
		}
		cfg.Telemetry = tel
	}
	s, err := sim.New(cfg)
	if err != nil {
		return chassisOut{err: err}
	}
	out := chassisOut{res: f.runSim(s, cfg)}
	out.arrived = s.Arrived()
	out.unfinished = s.Unfinished()
	if h != nil {
		if err := h.Err(); err != nil {
			return chassisOut{err: fmt.Errorf("invariant violation: %w", err)}
		}
	}
	if cfg.Faults != nil {
		out.ledger = &Ledger{
			FanEnergyJ:  float64(s.FanEnergyJ()),
			Requeues:    s.Requeues(),
			DeadSockets: s.DeadSockets(),
			FlowFactor:  s.FlowFactor(),
			Faulted:     1,
		}
	}
	return out
}

// runSim executes one chassis simulation, warm-starting from the WarmDir
// cache when enabled — the same contract as experiments' runSim: the cache
// is a pure accelerator, every failure along the warm path degrades to a
// cold run, and checked or instrumented runs never warm-start. The chassis's
// snapshot key includes its replay-stream signature (sim's source-identity
// hook), so two chassis share a cache entry only when their warmups really
// are bit-identical.
func (f *Fleet) runSim(s *sim.Simulator, cfg sim.Config) metrics.Result {
	if f.WarmDir == "" || cfg.Checks != nil || cfg.Telemetry != nil {
		return s.Run()
	}
	key, err := s.SnapshotKey()
	if err != nil {
		return s.Run()
	}
	path := filepath.Join(f.WarmDir, key+".dsnp")
	if data, err := os.ReadFile(path); err == nil {
		if err := s.Restore(data); err == nil {
			return s.Finish()
		}
	}
	s.RunTo(cfg.Warmup)
	if data, err := s.Snapshot(); err == nil {
		writeFileAtomic(path, data)
	}
	return s.Finish()
}

// writeFileAtomic writes data through a temp file plus rename, so concurrent
// fleet runs racing on one cache entry each land a complete capture.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
