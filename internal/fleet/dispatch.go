package fleet

// The fleet dispatcher seam: routing policies that split the fleet arrival
// stream across chassis before any intra-chassis scheduler sees a job. The
// paper's question one level up — does awareness of thermal context pay
// before placement? — becomes the choice between these policies.
//
// Every policy is deterministic and open-loop: dispatch runs serially over
// the whole stream before any chassis simulates, so policies see estimated
// chassis state (each routed job assumed to run for its nominal FMax
// duration), never live simulation state. That estimate is deliberately
// crude — queueing and thermal throttling stretch real service times — but
// it is the price of a dispatch that is bit-reproducible and independent of
// the worker pool. Ties always break toward the lowest chassis index, and
// chassis are canonically ordered by (rack, slot), so the pick sequence is a
// pure function of (policy, fleet, stream).

import (
	"container/heap"
	"fmt"
	"math"

	"densim/internal/chipmodel"
	"densim/internal/sim"
	"densim/internal/units"
)

// dispatcher routes one arrival to a chassis index.
type dispatcher interface {
	pick(at, nominal units.Seconds) int
}

// newDispatcher builds the named policy over the fleet's chassis. The empty
// name is round-robin.
func newDispatcher(name string, chassis []Chassis) (dispatcher, error) {
	switch name {
	case "", "round-robin":
		return &roundRobin{n: len(chassis)}, nil
	case "least-loaded":
		return newEstimated(chassis, false), nil
	case "thermal":
		return newEstimated(chassis, true), nil
	default:
		return nil, fmt.Errorf("fleet: unknown dispatcher %q", name)
	}
}

// roundRobin cycles the chassis in canonical order — the zero-knowledge
// baseline every informed policy has to beat.
type roundRobin struct{ n, next int }

func (r *roundRobin) pick(units.Seconds, units.Seconds) int {
	i := r.next
	r.next = (r.next + 1) % r.n
	return i
}

// estimated tracks per-chassis in-flight work as a min-heap of estimated
// completion instants (dispatch time + nominal duration). Both informed
// policies share it: least-loaded ranks by estimated utilization alone,
// thermal scales each chassis's ambient headroom by its estimated idleness —
// a hot-aisle chassis only wins when the cool ones are busy enough to have
// spent their advantage.
type estimated struct {
	chassis  []Chassis
	inflight []completionHeap
	thermal  bool
}

func newEstimated(chassis []Chassis, thermal bool) *estimated {
	return &estimated{
		chassis:  chassis,
		inflight: make([]completionHeap, len(chassis)),
		thermal:  thermal,
	}
}

func (e *estimated) pick(at, nominal units.Seconds) int {
	best, bestScore := 0, 0.0
	for i := range e.chassis {
		// Retire estimated completions that are due by this arrival.
		h := &e.inflight[i]
		for h.Len() > 0 && (*h)[0] <= at {
			heap.Pop(h)
		}
		util := float64(h.Len()) / float64(e.chassis[i].Sockets)
		var score float64
		if e.thermal {
			// Ambient headroom (how far the inlet sits below the throttle
			// ceiling) discounted by estimated utilization. Estimated
			// utilization above 1 (a backlog) goes negative and ranks last.
			headroom := float64(chipmodel.TempLimit - e.chassis[i].Inlet)
			score = headroom * (1 - util)
		} else {
			// Least-loaded: lower utilization is better.
			score = -util
		}
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	heap.Push(&e.inflight[best], at+nominal)
	return best
}

// completionHeap is a min-heap of estimated completion instants.
type completionHeap []units.Seconds

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(units.Seconds)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// closedDispatcher is the closed-loop half of the seam: the epoch executor
// feeds it true per-chassis observations at every tick-aligned boundary,
// and it routes the next window's arrivals over what it saw instead of what
// it estimated. The observe/pick split is deliberately the whole interface —
// a future gym-style external controller is exactly an implementation of
// these two calls.
type closedDispatcher interface {
	dispatcher
	// observe installs the boundary snapshot, indexed by canonical chassis
	// order. Called once before each dispatch window (including the first,
	// with the fleet's t=0 state).
	observe(obs []sim.Observation)
}

// newClosedDispatcher builds the named policy's closed-loop variant over the
// fleet's chassis. The same names resolve here as in newDispatcher: every
// policy has both an open- and a closed-loop form.
func newClosedDispatcher(name string, chassis []Chassis) (closedDispatcher, error) {
	switch name {
	case "", "round-robin":
		return &closedRoundRobin{roundRobin{n: len(chassis)}}, nil
	case "least-loaded":
		return newObserved(chassis, false), nil
	case "thermal":
		return newObserved(chassis, true), nil
	default:
		return nil, fmt.Errorf("fleet: unknown dispatcher %q", name)
	}
}

// closedRoundRobin is round-robin with its eyes open and its behavior
// unchanged: the cycle ignores observations by construction. That identity
// is load-bearing — closed-loop round-robin must produce the bit-identical
// per-chassis streams of open-loop round-robin, which is what proves the
// epoch-stepped executor itself is bit-exact (TestClosedLoopRoundRobin
// pins it against the pipeline).
type closedRoundRobin struct{ roundRobin }

func (c *closedRoundRobin) observe([]sim.Observation) {}

// observed is the closed-loop counterpart of estimated, shared by the
// informed policies: instead of a min-heap of assumed completion instants,
// it ranks on the in-flight depth and ambient headroom each chassis
// actually reported at the last boundary, plus the jobs routed to it within
// the current window (pending — dispatched but not yet visible in any
// observation). Dead sockets shrink a chassis's capacity, so a half-dead
// chassis saturates at half the load — state the open-loop estimator cannot
// see at all.
type observed struct {
	chassis  []Chassis
	thermal  bool
	inflight []int     // observed queue depth + busy sockets at the boundary
	pending  []int     // routed this window, not yet observable
	headroom []float64 // observed hottest-socket headroom (C)
	alive    []int     // sockets still able to take work
}

func newObserved(chassis []Chassis, thermal bool) *observed {
	o := &observed{
		chassis:  chassis,
		thermal:  thermal,
		inflight: make([]int, len(chassis)),
		pending:  make([]int, len(chassis)),
		headroom: make([]float64, len(chassis)),
		alive:    make([]int, len(chassis)),
	}
	// Pre-observation state mirrors an idle fleet; the executor always
	// observes before the first pick, so these are only a safety floor.
	for i := range chassis {
		o.headroom[i] = float64(chipmodel.TempLimit - chassis[i].Inlet)
		o.alive[i] = chassis[i].Sockets
	}
	return o
}

func (o *observed) observe(obs []sim.Observation) {
	for i := range obs {
		o.inflight[i] = obs[i].InFlight()
		o.headroom[i] = obs[i].HeadroomC
		o.alive[i] = obs[i].AliveSockets()
		o.pending[i] = 0
	}
}

func (o *observed) pick(_, _ units.Seconds) int {
	best, bestScore := 0, 0.0
	for i := range o.chassis {
		var score float64
		if o.alive[i] == 0 {
			// A fully dead chassis can complete nothing: rank it last
			// regardless of how much thermal headroom its idle hulk shows.
			score = math.Inf(-1)
		} else {
			util := float64(o.inflight[i]+o.pending[i]) / float64(o.alive[i])
			if o.thermal {
				// Observed hottest-socket headroom discounted by observed
				// utilization — the same shape as the open-loop score, with
				// both factors now live instead of estimated.
				score = o.headroom[i] * (1 - util)
			} else {
				score = -util
			}
		}
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	o.pending[best]++
	return best
}

// dispatch routes the whole stream, returning the per-chassis arrival slices
// and the recorded pick sequence (picks[k] is the chassis index of stream
// record k) — the dispatcher analog of a job trace, and what the pick-
// sequence determinism oracle replays.
func dispatch(d dispatcher, stream []arrival, n int) (assigns [][]arrival, picks []int) {
	assigns = make([][]arrival, n)
	picks = make([]int, len(stream))
	for k := range stream {
		i := d.pick(stream[k].at, stream[k].nominal)
		assigns[i] = append(assigns[i], stream[k])
		picks[k] = i
	}
	return assigns, picks
}
