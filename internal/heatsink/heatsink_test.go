package heatsink

import (
	"math"
	"testing"

	"densim/internal/units"
)

func TestPresetsMatchTable3(t *testing.T) {
	if got := Preset18Fin().Resistance(CalibrationFlow); math.Abs(got-RExt18Fin) > 1e-9 {
		t.Errorf("18-fin R_ext = %v, want %v", got, RExt18Fin)
	}
	if got := Preset30Fin().Resistance(CalibrationFlow); math.Abs(got-RExt30Fin) > 1e-9 {
		t.Errorf("30-fin R_ext = %v, want %v", got, RExt30Fin)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, s := range []FinArray{Preset18Fin(), Preset30Fin()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []FinArray{
		{Name: "one-fin", FinCount: 1, FinHeightM: 0.01, FinThicknessM: 0.001, BaseWidthM: 0.05, BaseLengthM: 0.05},
		{Name: "zero-height", FinCount: 10, FinHeightM: 0, FinThicknessM: 0.001, BaseWidthM: 0.05, BaseLengthM: 0.05},
		{Name: "too-wide", FinCount: 100, FinHeightM: 0.01, FinThicknessM: 0.001, BaseWidthM: 0.05, BaseLengthM: 0.05},
		{Name: "neg-base", FinCount: 10, FinHeightM: 0.01, FinThicknessM: 0.001, BaseWidthM: 0.05, BaseLengthM: 0.05, BaseResistance: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid geometry", c.Name)
		}
	}
}

func Test30FinBeats18Fin(t *testing.T) {
	// The denser array must have lower resistance at every flow level —
	// this is the heat-sink asymmetry the paper's schedulers exploit.
	s18, s30 := Preset18Fin(), Preset30Fin()
	for _, flow := range []units.CFM{2, 4, 6.35, 8, 12} {
		r18 := s18.Resistance(flow)
		r30 := s30.Resistance(flow)
		if r30 >= r18 {
			t.Errorf("at %v: 30-fin R %.3f >= 18-fin R %.3f", flow, r30, r18)
		}
	}
}

func TestResistanceDecreasesWithFlow(t *testing.T) {
	for _, s := range []FinArray{Preset18Fin(), Preset30Fin()} {
		prev := math.Inf(1)
		for _, flow := range []units.CFM{1, 2, 4, 6.35, 8, 12, 20} {
			r := s.Resistance(flow)
			if r >= prev {
				t.Errorf("%s: resistance not decreasing at %v (%v >= %v)", s.Name, flow, r, prev)
			}
			prev = r
		}
	}
}

func TestFinEfficiencyInUnitRange(t *testing.T) {
	for _, s := range []FinArray{Preset18Fin(), Preset30Fin()} {
		for _, flow := range []units.CFM{1, 6.35, 20} {
			eta := s.FinEfficiency(flow)
			if eta <= 0 || eta > 1 {
				t.Errorf("%s: fin efficiency %v out of (0,1] at %v", s.Name, eta, flow)
			}
		}
	}
}

func TestFinEfficiencyDropsWithFlow(t *testing.T) {
	// Higher h makes fins less efficient (steeper temperature gradient).
	for _, s := range []FinArray{Preset18Fin(), Preset30Fin()} {
		if s.FinEfficiency(20) >= s.FinEfficiency(1) {
			t.Errorf("%s: fin efficiency did not drop with flow", s.Name)
		}
	}
}

func TestChannelVelocityDenserIsFaster(t *testing.T) {
	// Same flow through a smaller free area must be faster.
	v18 := Preset18Fin().ChannelVelocityMS(CalibrationFlow)
	v30 := Preset30Fin().ChannelVelocityMS(CalibrationFlow)
	if v30 <= v18 {
		t.Errorf("30-fin velocity %v <= 18-fin velocity %v", v30, v18)
	}
}

func TestReynoldsLaminar(t *testing.T) {
	// The correlation used assumes laminar flow (Re < 5e5) at operating
	// points; verify the presets stay inside its envelope.
	for _, s := range []FinArray{Preset18Fin(), Preset30Fin()} {
		re := s.ReynoldsNumber(12)
		if re >= 5e5 {
			t.Errorf("%s: Re = %v exceeds laminar envelope at 12 CFM", s.Name, re)
		}
		if re <= 0 {
			t.Errorf("%s: non-positive Re", s.Name)
		}
	}
}

func TestConvectiveResistancePanicsOnZeroFlow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ConvectiveResistance(0) did not panic")
		}
	}()
	Preset18Fin().ConvectiveResistance(0)
}

func TestBaseResistancePositive(t *testing.T) {
	if Preset18Fin().BaseResistance <= 0 {
		t.Error("18-fin preset has non-positive base resistance; calibration target unreachable")
	}
	if Preset30Fin().BaseResistance <= 0 {
		t.Error("30-fin preset has non-positive base resistance; calibration target unreachable")
	}
}

func TestFreeFlowAreaPositive(t *testing.T) {
	for _, s := range []FinArray{Preset18Fin(), Preset30Fin()} {
		if s.FreeFlowAreaM2() <= 0 {
			t.Errorf("%s: non-positive free flow area", s.Name)
		}
	}
}
