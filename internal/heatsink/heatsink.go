// Package heatsink models the two finned heat sinks of the M700-class
// cartridge (Section II / III-C of the paper: an 18-fin sink on upstream
// sockets and a 30-fin sink on downstream sockets).
//
// The model is a classical fin-array analysis: forced air flows through the
// channels between parallel plate fins; a flat-plate laminar convection
// correlation gives the heat transfer coefficient from the channel velocity;
// fin efficiency accounts for the temperature drop along each fin; and a
// fixed base resistance lumps base spreading plus the thermal interface
// material. The presets calibrate the base term so that the total external
// resistance at the SUT's per-socket airflow (6.35 CFM) reproduces the
// paper's Table III values exactly: 1.578 C/W for the 18-fin sink and
// 1.056 C/W for the 30-fin sink. The flow dependence away from that point
// comes from the physics.
package heatsink

import (
	"fmt"
	"math"

	"densim/internal/units"
)

// Air-side transport properties around 25C used by the convection
// correlation.
const (
	airConductivityWmK   = 0.026   // thermal conductivity of air
	airKinematicVisc     = 1.6e-05 // kinematic viscosity, m^2/s
	airPrandtl           = 0.71    // Prandtl number
	aluminumConductivity = 200.0   // fin material conductivity, W/(m*K)
)

// FinArray describes a parallel-plate fin heat sink.
type FinArray struct {
	// Name labels the sink in reports ("18-fin", "30-fin").
	Name string
	// FinCount is the number of fins across the base width.
	FinCount int
	// FinHeightM, FinThicknessM are the fin dimensions in meters.
	FinHeightM    float64
	FinThicknessM float64
	// BaseWidthM is the base dimension across the airflow; BaseLengthM is
	// the dimension along the airflow (also the fin length).
	BaseWidthM  float64
	BaseLengthM float64
	// BaseResistance lumps base spreading plus the thermal interface
	// material, in C/W. Calibrated in the presets.
	BaseResistance float64
}

// Validate reports whether the geometry is physically meaningful.
func (f FinArray) Validate() error {
	switch {
	case f.FinCount < 2:
		return fmt.Errorf("heatsink %s: need at least 2 fins, have %d", f.Name, f.FinCount)
	case f.FinHeightM <= 0 || f.FinThicknessM <= 0 || f.BaseWidthM <= 0 || f.BaseLengthM <= 0:
		return fmt.Errorf("heatsink %s: non-positive dimension", f.Name)
	case float64(f.FinCount)*f.FinThicknessM >= f.BaseWidthM:
		return fmt.Errorf("heatsink %s: fins wider than base", f.Name)
	case f.BaseResistance < 0:
		return fmt.Errorf("heatsink %s: negative base resistance", f.Name)
	}
	return nil
}

// FreeFlowAreaM2 returns the open cross-section between fins that the air
// stream must pass through.
func (f FinArray) FreeFlowAreaM2() float64 {
	gaps := f.FinCount - 1
	gapWidth := (f.BaseWidthM - float64(f.FinCount)*f.FinThicknessM) / float64(gaps)
	return float64(gaps) * gapWidth * f.FinHeightM
}

// ChannelVelocityMS returns the mean air velocity in the fin channels at the
// given volumetric flow.
func (f FinArray) ChannelVelocityMS(flow units.CFM) float64 {
	return flow.CubicMetersPerSecond() / f.FreeFlowAreaM2()
}

// ReynoldsNumber returns the flow-length Reynolds number in the channels.
func (f FinArray) ReynoldsNumber(flow units.CFM) float64 {
	return f.ChannelVelocityMS(flow) * f.BaseLengthM / airKinematicVisc
}

// heatTransferCoefficient returns h in W/(m^2*K) from the laminar flat-plate
// correlation Nu = 0.664 * Re^0.5 * Pr^(1/3) averaged over the fin length.
func (f FinArray) heatTransferCoefficient(flow units.CFM) float64 {
	re := f.ReynoldsNumber(flow)
	nu := 0.664 * math.Sqrt(re) * math.Cbrt(airPrandtl)
	return nu * airConductivityWmK / f.BaseLengthM
}

// FinEfficiency returns the classical straight-fin efficiency
// tanh(mH)/(mH) with m = sqrt(2h/(k*t)).
func (f FinArray) FinEfficiency(flow units.CFM) float64 {
	h := f.heatTransferCoefficient(flow)
	m := math.Sqrt(2 * h / (aluminumConductivity * f.FinThicknessM))
	mh := m * f.FinHeightM
	if mh == 0 {
		return 1
	}
	return math.Tanh(mh) / mh
}

// ConvectiveResistance returns the air-side thermal resistance of the fin
// array (C/W) at the given flow, excluding the base term.
func (f FinArray) ConvectiveResistance(flow units.CFM) float64 {
	if flow <= 0 {
		panic("heatsink: ConvectiveResistance requires positive airflow")
	}
	h := f.heatTransferCoefficient(flow)
	finArea := float64(f.FinCount) * 2 * f.FinHeightM * f.BaseLengthM
	baseExposed := f.BaseLengthM * (f.BaseWidthM - float64(f.FinCount)*f.FinThicknessM)
	effArea := f.FinEfficiency(flow)*finArea + baseExposed
	return 1 / (h * effArea)
}

// Resistance returns the total sink-to-air thermal resistance (C/W): the
// calibrated base term plus the flow-dependent convective term. At 6.35 CFM
// the presets return the paper's R_ext values.
func (f FinArray) Resistance(flow units.CFM) float64 {
	return f.BaseResistance + f.ConvectiveResistance(flow)
}

// The SUT's per-socket airflow (Table III) at which presets are calibrated,
// and the target external resistances from Table III.
const (
	CalibrationFlow units.CFM = 6.35
	RExt18Fin                 = 1.578
	RExt30Fin                 = 1.056
)

// sharedGeometry returns the common cartridge sink footprint: a 50 mm by
// 50 mm base with 8 mm tall, 0.8 mm thick fins (Kabini-class package).
func sharedGeometry(name string, fins int) FinArray {
	return FinArray{
		Name:          name,
		FinCount:      fins,
		FinHeightM:    0.008,
		FinThicknessM: 0.0008,
		BaseWidthM:    0.050,
		BaseLengthM:   0.050,
	}
}

// calibrate sets BaseResistance so Resistance(CalibrationFlow) == target.
func calibrate(f FinArray, target float64) FinArray {
	conv := f.ConvectiveResistance(CalibrationFlow)
	if conv >= target {
		panic(fmt.Sprintf("heatsink %s: convective resistance %.3f exceeds calibration target %.3f",
			f.Name, conv, target))
	}
	f.BaseResistance = target - conv
	return f
}

// Preset18Fin returns the upstream socket's 18-fin sink, calibrated to
// R_ext = 1.578 C/W at 6.35 CFM.
func Preset18Fin() FinArray {
	return calibrate(sharedGeometry("18-fin", 18), RExt18Fin)
}

// Preset30Fin returns the downstream socket's 30-fin sink, calibrated to
// R_ext = 1.056 C/W at 6.35 CFM. The denser fin array moves more heat, which
// is why the cartridge designers placed it where intake air is pre-heated.
func Preset30Fin() FinArray {
	return calibrate(sharedGeometry("30-fin", 30), RExt30Fin)
}
