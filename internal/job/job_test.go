package job

import (
	"testing"

	"densim/internal/stats"
	"densim/internal/units"
	"densim/internal/workload"
)

func bench() workload.Benchmark { return workload.Benchmarks()[0] }

func TestNewJob(t *testing.T) {
	j := New(7, bench(), 1.5, 0.004)
	if j.ID != 7 || j.Arrival != 1.5 || j.Work != 0.004 || j.NominalDuration != 0.004 {
		t.Errorf("job = %+v", j)
	}
}

func TestNewPanicsOnBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero duration did not panic")
		}
	}()
	New(1, bench(), 0, 0)
}

func TestExpansion(t *testing.T) {
	j := New(1, bench(), 0, 0.004)
	j.Started = 1.0
	j.Done = 1.006
	if got := j.Expansion(); got < 1.499 || got > 1.501 {
		t.Errorf("expansion = %v, want 1.5", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if q.Pop() != nil || q.Peek() != nil || q.Len() != 0 {
		t.Error("empty queue misbehaves")
	}
	jobs := make([]*Job, 100)
	for i := range jobs {
		jobs[i] = New(ID(i), bench(), 0, 0.001)
		q.Push(jobs[i])
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Peek() != jobs[0] {
		t.Error("peek is not oldest")
	}
	for i := range jobs {
		if got := q.Pop(); got != jobs[i] {
			t.Fatalf("pop %d returned job %v", i, got.ID)
		}
	}
	if q.Len() != 0 || q.Pop() != nil {
		t.Error("queue not empty after draining")
	}
}

func TestQueueInterleaved(t *testing.T) {
	// Push/pop interleaving exercises ring wrap-around.
	var q Queue
	rng := stats.NewRNG(5)
	next := ID(0)
	expect := ID(0)
	for step := 0; step < 10000; step++ {
		if rng.Float64() < 0.55 {
			q.Push(New(next, bench(), 0, 0.001))
			next++
		} else if j := q.Pop(); j != nil {
			if j.ID != expect {
				t.Fatalf("step %d: popped %d, want %d", step, j.ID, expect)
			}
			expect++
		}
	}
	for j := q.Pop(); j != nil; j = q.Pop() {
		if j.ID != expect {
			t.Fatalf("drain: popped %d, want %d", j.ID, expect)
		}
		expect++
	}
	if expect != next {
		t.Errorf("drained %d jobs, pushed %d", expect, next)
	}
}

func TestSourceInterface(t *testing.T) {
	var src Source = workload.NewArrivals(workload.ClassMix(workload.Storage), 10, 0.5, stats.NewRNG(1))
	at0 := src.Peek()
	at, b, dur := src.Next()
	if at != at0 {
		t.Error("Peek disagrees with Next")
	}
	if b.Class != workload.Storage || dur <= 0 {
		t.Error("source produced invalid job")
	}
	if src.Peek() <= at {
		t.Error("source times not increasing")
	}
	_ = units.Seconds(0)
}
