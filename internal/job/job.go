// Package job defines the unit of work the simulator schedules — one VDI
// job derived from the PCMark-class workload model — together with the FIFO
// pending queue and the Source abstraction that feeds jobs into the
// simulation (either a live probabilistic generator or a recorded trace).
package job

import (
	"fmt"

	"densim/internal/units"
	"densim/internal/workload"
)

// ID numbers jobs in arrival order.
type ID int64

// Job is one schedulable unit of work.
type Job struct {
	ID ID
	// Benchmark the job belongs to; supplies the power and performance
	// curves.
	Benchmark workload.Benchmark
	// Arrival is the time the job entered the system.
	Arrival units.Seconds
	// NominalDuration is the run time the job would take at FMax.
	NominalDuration units.Seconds
	// Work is the remaining normalized work: starts at NominalDuration and
	// decreases at RelPerf(freq) seconds of work per second of wall time.
	Work units.Seconds
	// Started is when the job was placed on a socket (undefined before).
	Started units.Seconds
	// Done is when the job completed (undefined before completion).
	Done units.Seconds
}

// New creates a job with its full work remaining.
func New(id ID, b workload.Benchmark, arrival, nominal units.Seconds) *Job {
	if nominal <= 0 {
		panic(fmt.Sprintf("job: non-positive nominal duration %v", nominal))
	}
	return &Job{ID: id, Benchmark: b, Arrival: arrival, NominalDuration: nominal, Work: nominal}
}

// Expansion returns the job's runtime expansion after completion: the ratio
// of actual service time to the FMax run time. 1.0 means the job never
// throttled below FMax; this is the per-job metric behind the paper's
// "average run-time expansion" (Figure 11).
func (j *Job) Expansion() float64 {
	service := float64(j.Done - j.Started)
	return service / float64(j.NominalDuration)
}

// Pool recycles Job allocations. At high load the simulator retires
// thousands of jobs per simulated second, and each completed job is
// unreachable the moment the completion hooks return — so the owner hands it
// back with Put and the next arrival reuses the allocation via Get. Get
// resets every field to exactly what New would construct, so a recycled job
// is indistinguishable from a fresh one; the simulator's pick caches key by
// benchmark value (or are invalidated at the completion that frees the job),
// never by job pointer identity, which is what makes recycling unobservable.
// Not safe for concurrent use; give each simulation its own Pool.
type Pool struct {
	free []*Job
}

// Get returns a job with its full work remaining, reusing a previously Put
// allocation when one is available.
func (p *Pool) Get(id ID, b workload.Benchmark, arrival, nominal units.Seconds) *Job {
	n := len(p.free)
	if n == 0 {
		return New(id, b, arrival, nominal)
	}
	j := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	if nominal <= 0 {
		panic(fmt.Sprintf("job: non-positive nominal duration %v", nominal))
	}
	*j = Job{ID: id, Benchmark: b, Arrival: arrival, NominalDuration: nominal, Work: nominal}
	return j
}

// Put hands a job back for reuse. The caller must not touch j afterwards.
func (p *Pool) Put(j *Job) {
	p.free = append(p.free, j)
}

// Queue is the FIFO pending-job queue the central job controller drains
// (Section III-D: arriving jobs enter a queue; if no socket is idle the
// scheduler waits for one to free up). Implemented as a ring buffer to keep
// high-load simulations allocation-free in steady state.
type Queue struct {
	buf  []*Job
	head int
	n    int
}

// Len returns the number of queued jobs.
func (q *Queue) Len() int { return q.n }

// Push appends a job.
func (q *Queue) Push(j *Job) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = j
	q.n++
}

// Pop removes and returns the oldest job, or nil if empty.
func (q *Queue) Pop() *Job {
	if q.n == 0 {
		return nil
	}
	j := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return j
}

// Peek returns the oldest job without removing it, or nil if empty.
func (q *Queue) Peek() *Job {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th queued job in FIFO order (0 = oldest) without
// removing it. It panics if i is out of range. Snapshots use it to walk the
// queue non-destructively.
func (q *Queue) At(i int) *Job {
	if i < 0 || i >= q.n {
		panic(fmt.Sprintf("job: Queue.At(%d) out of range [0,%d)", i, q.n))
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

func (q *Queue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Job, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Source produces the job arrival stream. workload.Arrivals is the live
// generator; trace.Player replays a recorded stream.
type Source interface {
	// Peek returns the time of the next arrival (may be +inf if exhausted).
	Peek() units.Seconds
	// Next consumes the next arrival.
	Next() (at units.Seconds, b workload.Benchmark, nominal units.Seconds)
}

// Verify workload.Arrivals satisfies Source.
var _ Source = (*workload.Arrivals)(nil)
