package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values in 1000 draws, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	if len(p) != 20 {
		t.Fatalf("Perm(20) length %d", len(p))
	}
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(321)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Split()
	// Child stream should not equal a same-seed parent continuation.
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("split stream matched parent %d/100 times", matches)
	}
}
