// Package stats provides the deterministic random-number machinery and the
// descriptive statistics used by the simulator and the experiment harness.
//
// Simulation research lives and dies by reproducibility: every stochastic
// component in densim draws from an explicitly seeded RNG so that a run is a
// pure function of (configuration, seed). The package also implements the
// distributions the workload model needs (exponential inter-arrivals,
// lognormal job durations) and the summary statistics the paper reports
// (means, coefficients of variation).
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64. It is not safe for concurrent use; give each goroutine its own
// stream via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams on every platform.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's internal state so a snapshot can capture
// the stream position exactly; SetState resumes it.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state, resuming the stream
// captured by State bit-for-bit.
func (r *RNG) SetState(s uint64) { r.state = s }

// Split derives an independent generator from the current one. The child's
// stream is a deterministic function of the parent state at the time of the
// call, so fan-out remains reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform (polar rejection form, which avoids trig calls).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
