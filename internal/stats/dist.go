package stats

import (
	"fmt"
	"math"
)

// Exponential is an exponential distribution with the given mean, used for
// Poisson inter-arrival times in the load generator.
type Exponential struct {
	Mean float64
}

// Sample draws one variate.
func (e Exponential) Sample(r *RNG) float64 {
	return e.Mean * r.ExpFloat64()
}

// Lognormal is a lognormal distribution parameterized by the mean and the
// coefficient of variation of the *resulting* values (not of the underlying
// normal), which is the natural way to express the paper's Figure 6 numbers:
// "average job durations on the order of a few msec" with maxima "almost two
// orders of magnitude higher".
type Lognormal struct {
	// Mean is E[X].
	Mean float64
	// CoV is the coefficient of variation StdDev[X]/E[X].
	CoV float64
}

// mu and sigma of the underlying normal.
func (l Lognormal) params() (mu, sigma float64) {
	sigma2 := math.Log(1 + l.CoV*l.CoV)
	sigma = math.Sqrt(sigma2)
	mu = math.Log(l.Mean) - sigma2/2
	return mu, sigma
}

// Sample draws one variate.
func (l Lognormal) Sample(r *RNG) float64 {
	mu, sigma := l.params()
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Quantile returns the p-quantile (0 < p < 1) of the distribution, computed
// from the inverse error function.
func (l Lognormal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of (0,1)", p))
	}
	mu, sigma := l.params()
	return math.Exp(mu + sigma*math.Sqrt2*erfinv(2*p-1))
}

// erfinv approximates the inverse error function (Giles, 2010 single
// precision refinement extended with one Newton step for float64 accuracy).
func erfinv(x float64) float64 {
	if x <= -1 || x >= 1 {
		panic("stats: erfinv argument out of (-1,1)")
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 5 {
		w -= 2.5
		p = 2.81022636e-08
		p = 3.43273939e-07 + p*w
		p = -3.5233877e-06 + p*w
		p = -4.39150654e-06 + p*w
		p = 0.00021858087 + p*w
		p = -0.00125372503 + p*w
		p = -0.00417768164 + p*w
		p = 0.246640727 + p*w
		p = 1.50140941 + p*w
	} else {
		w = math.Sqrt(w) - 3
		p = -0.000200214257
		p = 0.000100950558 + p*w
		p = 0.00134934322 + p*w
		p = -0.00367342844 + p*w
		p = 0.00573950773 + p*w
		p = -0.0076224613 + p*w
		p = 0.00943887047 + p*w
		p = 1.00167406 + p*w
		p = 2.83297682 + p*w
	}
	y := p * x
	// One Newton refinement: f(y) = erf(y) - x.
	y -= (math.Erf(y) - x) / (2 / math.SqrtPi * math.Exp(-y*y))
	return y
}

// Uniform is a uniform distribution over [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws one variate.
func (u Uniform) Sample(r *RNG) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}
