package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialMean(t *testing.T) {
	r := NewRNG(1)
	d := Exponential{Mean: 2.5}
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Errorf("exponential mean = %v, want ~2.5", mean)
	}
}

func TestLognormalMoments(t *testing.T) {
	r := NewRNG(2)
	for _, tc := range []Lognormal{
		{Mean: 0.004, CoV: 1.5},
		{Mean: 1, CoV: 0.3},
		{Mean: 10, CoV: 3},
	} {
		const n = 300000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := tc.Sample(r)
			if v <= 0 {
				t.Fatalf("lognormal variate non-positive: %v", v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		sd := math.Sqrt(sumSq/n - mean*mean)
		if math.Abs(mean-tc.Mean)/tc.Mean > 0.05 {
			t.Errorf("Lognormal%+v mean = %v", tc, mean)
		}
		cov := sd / mean
		if math.Abs(cov-tc.CoV)/tc.CoV > 0.1 {
			t.Errorf("Lognormal%+v CoV = %v", tc, cov)
		}
	}
}

func TestLognormalHeavyTail(t *testing.T) {
	// Figure 6: maximum job durations ~2 orders of magnitude above the mean.
	// A CoV around 2-3 gives a p99.99 roughly 50-200x the mean.
	d := Lognormal{Mean: 0.003, CoV: 2.5}
	q := d.Quantile(0.9999)
	ratio := q / d.Mean
	if ratio < 30 || ratio > 500 {
		t.Errorf("p99.99/mean = %v, want within [30,500] (two orders of magnitude)", ratio)
	}
}

func TestLognormalQuantileMonotone(t *testing.T) {
	d := Lognormal{Mean: 5, CoV: 1}
	prev := 0.0
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		q := d.Quantile(p)
		if q <= prev {
			t.Fatalf("quantile not monotone at p=%v: %v <= %v", p, q, prev)
		}
		prev = q
	}
}

func TestLognormalMedian(t *testing.T) {
	d := Lognormal{Mean: 2, CoV: 0.8}
	mu, _ := d.params()
	med := d.Quantile(0.5)
	if math.Abs(med-math.Exp(mu)) > 1e-6*math.Exp(mu) {
		t.Errorf("median = %v, want exp(mu) = %v", med, math.Exp(mu))
	}
}

func TestErfinvInverse(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 0.999)
		if math.IsNaN(x) {
			return true
		}
		y := erfinv(x)
		return math.Abs(math.Erf(y)-x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErfinvSymmetry(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := erfinv(-x), -erfinv(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("erfinv(-%v) = %v, want %v", x, got, want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	d := Lognormal{Mean: 1, CoV: 1}
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			d.Quantile(p)
		}()
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(3)
	u := Uniform{Lo: -2, Hi: 5}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := u.Sample(r)
		if v < -2 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1.5) > 0.05 {
		t.Errorf("uniform mean = %v, want ~1.5", mean)
	}
}
