package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // population standard deviation
	Min    float64
	Max    float64
}

// CoV returns the coefficient of variation StdDev/Mean, the dispersion
// measure the paper uses in Figures 5(b) and 6(b). It is 0 for an empty
// sample or a sample with zero mean.
func (s Summary) CoV() float64 {
	if s.N == 0 || s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// Summarize computes descriptive statistics over xs in one pass using
// Welford's algorithm for numerical stability.
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	var m2 float64
	for _, x := range xs {
		s.N++
		delta := x - s.Mean
		s.Mean += delta / float64(s.N)
		m2 += delta * (x - s.Mean)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.StdDev = math.Sqrt(m2 / float64(s.N))
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Welford accumulates streaming (optionally weighted) mean/variance without
// storing samples; the simulator uses it for time-weighted per-zone
// frequency statistics over millions of segments.
type Welford struct {
	wsum float64 // total weight (count, for unweighted use)
	mean float64
	m2   float64
}

// Add incorporates one observation with weight 1.
func (w *Welford) Add(x float64) { w.AddWeighted(x, 1) }

// AddWeighted incorporates an observation with a positive weight, treating
// the weight as a (possibly fractional) repetition count. Non-positive
// weights are ignored.
func (w *Welford) AddWeighted(x, weight float64) {
	if weight <= 0 {
		return
	}
	w.wsum += weight
	delta := x - w.mean
	w.mean += delta * weight / w.wsum
	w.m2 += weight * delta * (x - w.mean)
}

// State returns the accumulator's raw (weight-sum, mean, M2) triple so a
// snapshot can capture a mid-stream accumulator exactly; SetState resumes it.
func (w *Welford) State() (wsum, mean, m2 float64) { return w.wsum, w.mean, w.m2 }

// SetState overwrites the accumulator with a triple captured by State,
// resuming the stream bit-for-bit.
func (w *Welford) SetState(wsum, mean, m2 float64) {
	w.wsum, w.mean, w.m2 = wsum, mean, m2
}

// N returns the accumulated weight truncated to an integer — the exact
// observation count for unweighted use.
func (w *Welford) N() int { return int(w.wsum) }

// Mean returns the running weighted mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running weighted population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.wsum == 0 {
		return 0
	}
	return math.Sqrt(w.m2 / w.wsum)
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values outside
// the range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Counts  []uint64
	samples uint64
}

// NewHistogram creates a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.samples++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.samples }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}
