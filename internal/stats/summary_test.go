package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.CoV() != 0 {
		t.Errorf("empty CoV = %v", s.CoV())
	}
}

func TestCoV(t *testing.T) {
	s := Summarize([]float64{10, 10, 10})
	if s.CoV() != 0 {
		t.Errorf("constant sample CoV = %v", s.CoV())
	}
	s2 := Summarize([]float64{5, 15})
	if math.Abs(s2.CoV()-0.5) > 1e-12 {
		t.Errorf("CoV = %v, want 0.5", s2.CoV())
	}
}

func TestSummarizeMatchesWelford(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		var w Welford
		for _, x := range clean {
			w.Add(x)
		}
		return math.Abs(s.Mean-w.Mean()) < 1e-6 && math.Abs(s.StdDev-w.StdDev()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("p100 = %v", got)
	}
	// Interpolation: p25 over 9 sorted values is rank 2.0 exactly -> 3.
	if got := Percentile(xs, 25); got != 3 {
		t.Errorf("p25 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 of {0,10} = %v, want 5", got)
	}
	if got := Percentile(xs, 75); got != 7.5 {
		t.Errorf("p75 of {0,10} = %v, want 7.5", got)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(empty) did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestWelfordWeighted(t *testing.T) {
	var w Welford
	w.AddWeighted(10, 2)
	w.AddWeighted(20, 2)
	if math.Abs(w.Mean()-15) > 1e-12 {
		t.Errorf("weighted mean = %v, want 15", w.Mean())
	}
	// Zero and negative weights are ignored.
	w.AddWeighted(1000, 0)
	w.AddWeighted(1000, -5)
	if math.Abs(w.Mean()-15) > 1e-12 {
		t.Errorf("mean after ignored weights = %v", w.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1.5, 5, 9.9, -3, 42} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // 0.5, 1.5, -3 (clamped)
		t.Errorf("bucket 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[2] != 1 { // 5
		t.Errorf("bucket 2 = %d, want 1", h.Counts[2])
	}
	if h.Counts[4] != 2 { // 9.9, 42 (clamped)
		t.Errorf("bucket 4 = %d, want 2", h.Counts[4])
	}
	if got := h.BucketCenter(0); got != 1 {
		t.Errorf("BucketCenter(0) = %v, want 1", got)
	}
	if got := h.BucketCenter(4); got != 9 {
		t.Errorf("BucketCenter(4) = %v, want 9", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{{0, 0, 5}, {1, 0, 5}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.n)
		}()
	}
}
