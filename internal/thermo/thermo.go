// Package thermo implements the first-law-of-thermodynamics cooling
// computations the paper uses for Table II and for the analytical
// socket-entry-temperature model.
//
// Forced-air cooling removes heat by warming an air stream: a component
// dissipating P watts into a stream with heat capacity rate m_dot*cp (W/K)
// raises the stream temperature by P/(m_dot*cp). Everything in this package
// is a rearrangement of that identity, using the "standardized total cooling
// requirements" formulation from fan-vendor application notes [25].
package thermo

import (
	"fmt"

	"densim/internal/units"
)

// StreamRise returns the temperature increase of an air stream that absorbs
// power watts at the given volumetric flow.
func StreamRise(air units.Air, power units.Watts, flow units.CFM) units.Celsius {
	if flow <= 0 {
		panic("thermo: StreamRise requires positive airflow")
	}
	return units.Celsius(float64(power) / air.HeatCapacityRateWPerK(flow))
}

// RequiredCFM returns the airflow needed to carry away power watts while
// keeping the outlet no more than deltaT above the inlet. This is the
// calculation behind the paper's Table II (e.g. 208 W/U at deltaT = 20C
// requires ~18.3 CFM per 1U).
func RequiredCFM(air units.Air, power units.Watts, deltaT units.Celsius) units.CFM {
	if deltaT <= 0 {
		panic("thermo: RequiredCFM requires positive deltaT")
	}
	m3s := float64(power) / (air.DensityKgM3 * air.SpecificHeatJKgK * float64(deltaT))
	return units.FromCubicMetersPerSecond(m3s)
}

// RemovablePower returns the power a stream can absorb at the given flow
// within the allowed temperature rise — the inverse of RequiredCFM.
func RemovablePower(air units.Air, flow units.CFM, deltaT units.Celsius) units.Watts {
	return units.Watts(air.HeatCapacityRateWPerK(flow) * float64(deltaT))
}

// ServerClass identifies a server form-factor category from the paper's
// SPECpower study (Section I / Table II).
type ServerClass string

// Server classes analyzed in the paper's Figure 1 and Table II.
const (
	Class1U         ServerClass = "1U"
	Class2U         ServerClass = "2U"
	ClassOther      ServerClass = "Other"
	ClassBlade      ServerClass = "Blade"
	ClassDensityOpt ServerClass = "DensityOpt"
)

// ClassProfile carries the per-1U averages the paper reports for a server
// class: Section I gives power density and socket density, Table II derives
// the airflow requirement.
type ClassProfile struct {
	Class         ServerClass
	PowerPerU     units.Watts // average power per 1U of rack space
	SocketsPerU   float64     // average sockets per 1U of rack space
	AirflowPerU20 units.CFM   // CFM per 1U to hold a 20C inlet-outlet rise
}

// ClassProfiles returns the five server classes with the paper's published
// power and socket densities, and the airflow requirement computed from the
// first law at deltaT = 20C. The computed airflow matches Table II.
func ClassProfiles() []ClassProfile {
	classes := []struct {
		class    ServerClass
		powerU   units.Watts
		socketsU float64
	}{
		{Class1U, 208, 1.79},
		{Class2U, 147, 1.15},
		{ClassOther, 114, 0.78},
		{ClassBlade, 421, 3.47},
		{ClassDensityOpt, 588, 25.0},
	}
	out := make([]ClassProfile, len(classes))
	for i, c := range classes {
		out[i] = ClassProfile{
			Class:         c.class,
			PowerPerU:     c.powerU,
			SocketsPerU:   c.socketsU,
			AirflowPerU20: RequiredCFM(units.StandardAir, c.powerU, 20),
		}
	}
	return out
}

// Profile returns the profile for one class or an error if unknown.
func Profile(class ServerClass) (ClassProfile, error) {
	for _, p := range ClassProfiles() {
		if p.Class == class {
			return p, nil
		}
	}
	return ClassProfile{}, fmt.Errorf("thermo: unknown server class %q", class)
}
