package thermo

import (
	"math"
	"testing"
	"testing/quick"

	"densim/internal/units"
)

func TestStreamRise(t *testing.T) {
	// 30W into a 6.35 CFM stream: the paper's Figure 2 cartridge observation.
	rise := StreamRise(units.StandardAir, 30, 6.35)
	if rise < 7.8 || rise > 8.8 {
		t.Errorf("rise = %v, want ~8.3C", rise)
	}
}

func TestStreamRiseLinearity(t *testing.T) {
	f := func(p float64) bool {
		p = math.Mod(math.Abs(p), 1000)
		if math.IsNaN(p) {
			return true
		}
		one := StreamRise(units.StandardAir, units.Watts(p), 10)
		two := StreamRise(units.StandardAir, units.Watts(2*p), 10)
		return math.Abs(float64(two)-2*float64(one)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamRisePanicsOnZeroFlow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StreamRise with zero flow did not panic")
		}
	}()
	StreamRise(units.StandardAir, 10, 0)
}

func TestRequiredCFMTable2(t *testing.T) {
	// Paper Table II: airflow per 1U for a 20C inlet-outlet rise.
	cases := []struct {
		power units.Watts
		want  float64 // CFM
	}{
		{208, 18.30},
		{147, 12.94},
		{114, 10.03},
		{421, 37.05},
		{588, 51.74},
	}
	for _, tc := range cases {
		got := RequiredCFM(units.StandardAir, tc.power, 20)
		if math.Abs(float64(got)-tc.want) > 0.15 {
			t.Errorf("RequiredCFM(%v) = %.2f CFM, want %.2f (Table II)", tc.power, float64(got), tc.want)
		}
	}
}

func TestRequiredCFMPanicsOnBadDeltaT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RequiredCFM with zero deltaT did not panic")
		}
	}()
	RequiredCFM(units.StandardAir, 100, 0)
}

func TestRemovablePowerInverse(t *testing.T) {
	f := func(p float64) bool {
		p = 1 + math.Mod(math.Abs(p), 1000)
		if math.IsNaN(p) {
			return true
		}
		flow := RequiredCFM(units.StandardAir, units.Watts(p), 20)
		back := RemovablePower(units.StandardAir, flow, 20)
		return math.Abs(float64(back)-p) < 1e-6*p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassProfiles(t *testing.T) {
	ps := ClassProfiles()
	if len(ps) != 5 {
		t.Fatalf("got %d classes, want 5", len(ps))
	}
	// Density optimized servers: ~50%+ power density over blades, ~6x
	// socket density (Section I).
	var blade, dense ClassProfile
	for _, p := range ps {
		switch p.Class {
		case ClassBlade:
			blade = p
		case ClassDensityOpt:
			dense = p
		}
	}
	if ratio := float64(dense.PowerPerU) / float64(blade.PowerPerU); ratio < 1.3 || ratio > 1.5 {
		t.Errorf("power density ratio dense/blade = %v, want ~1.4", ratio)
	}
	if ratio := dense.SocketsPerU / blade.SocketsPerU; ratio < 6 || ratio > 8 {
		t.Errorf("socket density ratio dense/blade = %v, want ~7", ratio)
	}
	// Airflow must be monotone in power.
	for _, p := range ps {
		want := RequiredCFM(units.StandardAir, p.PowerPerU, 20)
		if p.AirflowPerU20 != want {
			t.Errorf("%s airflow = %v, want %v", p.Class, p.AirflowPerU20, want)
		}
	}
}

func TestProfileLookup(t *testing.T) {
	p, err := Profile(Class1U)
	if err != nil {
		t.Fatalf("Profile(1U): %v", err)
	}
	if p.PowerPerU != 208 {
		t.Errorf("1U power = %v", p.PowerPerU)
	}
	if _, err := Profile("42U"); err == nil {
		t.Error("Profile(42U) did not error")
	}
}
