package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Header: []string{"name", "value"}}
	t.AddRow("alpha", 1.5)
	t.AddRow("b", 42)
	return t
}

func TestRenderAlignment(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "1.500") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1.500") {
		t.Errorf("misaligned value column:\n%s", out)
	}
}

func TestRenderWideCells(t *testing.T) {
	tb := &Table{Header: []string{"x"}}
	tb.AddRow("something-much-wider-than-header")
	out := tb.String()
	if !strings.Contains(out, "something-much-wider-than-header") {
		t.Errorf("wide cell lost:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow(`say "hi"`, "x,y")
	tb.AddRow("plain", 7)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\nplain,7\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestAddRowFormats(t *testing.T) {
	tb := &Table{Header: []string{"v"}}
	tb.AddRow(3.14159)
	tb.AddRow(7)
	tb.AddRow("str")
	if tb.Rows[0][0] != "3.142" || tb.Rows[1][0] != "7" || tb.Rows[2][0] != "str" {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestEmptyTableRenders(t *testing.T) {
	tb := &Table{Header: []string{"only", "header"}}
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Errorf("empty table output: %q", out)
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.065); got != "6.5%" {
		t.Errorf("FormatPercent = %q", got)
	}
	if got := FormatPercent(-0.02); got != "-2.0%" {
		t.Errorf("FormatPercent = %q", got)
	}
}
