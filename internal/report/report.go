// Package report renders experiment results as aligned ASCII tables and CSV
// — the textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row built from the arguments' default formatting.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// FormatPercent renders a fraction as a percentage with one decimal, e.g.
// 0.065 -> "6.5%".
func FormatPercent(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
