package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"densim/internal/stats"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	x, err := SolveSystem(a, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, 5, 6} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := NewMatrix(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveSystem(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRoundTripRandom(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64()*2-1)
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Add(i, i, float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*10 - 5
		}
		b := a.MulVec(want)
		got, err := SolveSystem(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestFactorDoesNotMutateInput(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	before := append([]float64(nil), a.Data...)
	if _, err := Factor(a); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if a.Data[i] != before[i] {
			t.Fatal("Factor mutated its input")
		}
	}
}

func TestLUReuse(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 0)
	a.Set(1, 0, 0)
	a.Set(1, 1, 4)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := f.Solve([]float64{2, 4})
	x2 := f.Solve([]float64{4, 8})
	if math.Abs(x1[0]-1) > 1e-12 || math.Abs(x2[0]-2) > 1e-12 {
		t.Errorf("reused LU gave %v and %v", x1, x2)
	}
}

func TestMulVecProperty(t *testing.T) {
	// (A*(x+y)) == A*x + A*y
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(6)
		a := NewMatrix(n)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64())
			}
		}
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		ax := a.MulVec(x)
		ay := a.MulVec(y)
		asum := a.MulVec(sum)
		for i := range asum {
			if math.Abs(asum[i]-(ax[i]+ay[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0) did not panic")
		}
	}()
	NewMatrix(0)
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong dimension did not panic")
		}
	}()
	NewMatrix(3).MulVec([]float64{1, 2})
}
