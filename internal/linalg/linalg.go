// Package linalg provides the small dense linear-algebra kernels the thermal
// solvers need: LU factorization with partial pivoting and triangular
// solves. The thermal networks in this project have tens of nodes, so a
// straightforward O(n^3) dense factorization is both simple and fast.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix has no usable pivot.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewMatrix allocates a zero n x n matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("linalg: non-positive matrix size")
	}
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.N))
	}
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on and above)
	perm []int
}

// Factor computes the LU factorization of a. The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	n := a.N
	f := &LU{n: n, lu: append([]float64(nil), a.Data...), perm: make([]int, n)}
	for i := range f.perm {
		f.perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in column at or below diagonal.
		pivRow, pivVal := col, math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu[r*n+col]); v > pivVal {
				pivRow, pivVal = r, v
			}
		}
		if pivVal == 0 {
			return nil, ErrSingular
		}
		if pivRow != col {
			for j := 0; j < n; j++ {
				f.lu[col*n+j], f.lu[pivRow*n+j] = f.lu[pivRow*n+j], f.lu[col*n+j]
			}
			f.perm[col], f.perm[pivRow] = f.perm[pivRow], f.perm[col]
		}
		piv := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			factor := f.lu[r*n+col] / piv
			f.lu[r*n+col] = factor
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= factor * f.lu[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x with A*x = b. The input is not modified.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic(fmt.Sprintf("linalg: Solve dimension mismatch %d vs %d", len(b), f.n))
	}
	n := f.n
	x := make([]float64, n)
	// Apply permutation and forward-substitute L.
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// SolveSystem is a convenience that factors and solves in one call.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
