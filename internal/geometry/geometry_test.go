package geometry

import (
	"math"
	"testing"

	"densim/internal/chipmodel"
	"densim/internal/units"
)

func TestSUTShape(t *testing.T) {
	s := SUT()
	if s.NumSockets() != 180 {
		t.Fatalf("SUT sockets = %d, want 180", s.NumSockets())
	}
	if s.Rows != 15 || s.Lanes != 2 || s.Depth != 6 {
		t.Errorf("SUT dims = %dx%dx%d, want 15x2x6", s.Rows, s.Lanes, s.Depth)
	}
	if s.DegreeOfCoupling() != 6 {
		t.Errorf("degree of coupling = %d, want 6", s.DegreeOfCoupling())
	}
}

func TestSUTZoneSinks(t *testing.T) {
	// Figure 12: odd zones 18-fin, even zones 30-fin.
	s := SUT()
	for _, sk := range s.Sockets() {
		zone := s.Zone(sk.ID)
		want := chipmodel.Sink18Fin
		if zone%2 == 0 {
			want = chipmodel.Sink30Fin
		}
		if got := s.Sink(sk.ID); got != want {
			t.Fatalf("zone %d socket has sink %v, want %v", zone, got, want)
		}
		if s.IsEvenZone(sk.ID) != (zone%2 == 0) {
			t.Fatalf("IsEvenZone mismatch for zone %d", zone)
		}
	}
}

func TestSUTSpacing(t *testing.T) {
	// Section IV-B: sockets within a cartridge are 1.6 inches apart; adjacent
	// sockets between cartridges (zones 2 and 3) are about 3 inches apart.
	s := SUT()
	x := s.XPositions
	if len(x) != 6 {
		t.Fatalf("depth positions = %d", len(x))
	}
	within := (x[1] - x[0]).Inches()
	between := (x[2] - x[1]).Inches()
	if math.Abs(within-1.6) > 1e-9 {
		t.Errorf("within-cartridge spacing = %v in, want 1.6", within)
	}
	if math.Abs(between-3.0) > 1e-9 {
		t.Errorf("between-cartridge spacing = %v in, want 3.0", between)
	}
	// The pattern repeats: zone3-zone4 = 1.6, zone4-zone5 = 3.0.
	if math.Abs((x[3]-x[2]).Inches()-1.6) > 1e-9 || math.Abs((x[4]-x[3]).Inches()-3.0) > 1e-9 {
		t.Error("cartridge spacing pattern broken")
	}
}

func TestZoneNumbering(t *testing.T) {
	s := SUT()
	for p := 0; p < s.Depth; p++ {
		sk := s.SocketAt(3, 1, p)
		if got := s.Zone(sk.ID); got != p+1 {
			t.Errorf("pos %d zone = %d, want %d", p, got, p+1)
		}
	}
}

func TestFrontHalf(t *testing.T) {
	s := SUT()
	for _, sk := range s.Sockets() {
		want := s.Zone(sk.ID) <= 3
		if got := s.IsFrontHalf(sk.ID); got != want {
			t.Errorf("zone %d IsFrontHalf = %v", s.Zone(sk.ID), got)
		}
	}
}

func TestUpstreamDownstream(t *testing.T) {
	s := SUT()
	mid := s.SocketAt(4, 1, 2)
	up := s.Upstream(mid.ID)
	down := s.Downstream(mid.ID)
	if len(up) != 2 || len(down) != 3 {
		t.Fatalf("upstream/downstream sizes = %d/%d, want 2/3", len(up), len(down))
	}
	// Nearest first.
	if s.Socket(up[0]).Pos != 1 || s.Socket(up[1]).Pos != 0 {
		t.Error("upstream not nearest-first")
	}
	if s.Socket(down[0]).Pos != 3 || s.Socket(down[2]).Pos != 5 {
		t.Error("downstream not nearest-first")
	}
	// Same row and lane throughout.
	for _, id := range append(append([]SocketID{}, up...), down...) {
		if s.Socket(id).Row != 4 || s.Socket(id).Lane != 1 {
			t.Error("upstream/downstream crossed row or lane")
		}
	}
	// Edges.
	if len(s.Upstream(s.SocketAt(0, 0, 0).ID)) != 0 {
		t.Error("zone-1 socket has upstream sockets")
	}
	if len(s.Downstream(s.SocketAt(0, 0, 5).ID)) != 0 {
		t.Error("zone-6 socket has downstream sockets")
	}
}

func TestNeighbors(t *testing.T) {
	s := SUT()
	// Interior socket: 2 along flow + 1 lane + 2 rows = 5 neighbors.
	if got := len(s.Neighbors(s.SocketAt(7, 0, 3).ID)); got != 5 {
		t.Errorf("interior neighbors = %d, want 5", got)
	}
	// Corner socket (row 0, lane 0, pos 0): 1 flow + 1 lane + 1 row = 3.
	if got := len(s.Neighbors(s.SocketAt(0, 0, 0).ID)); got != 3 {
		t.Errorf("corner neighbors = %d, want 3", got)
	}
}

func TestRowSockets(t *testing.T) {
	s := SUT()
	row := s.RowSockets(6)
	if len(row) != 12 {
		t.Fatalf("row sockets = %d, want 12 (2 lanes x 6 zones)", len(row))
	}
	for _, id := range row {
		if s.Socket(id).Row != 6 {
			t.Error("RowSockets returned socket from another row")
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	s := SUT()
	a := s.SocketAt(0, 0, 0).ID
	b := s.SocketAt(0, 0, 1).ID
	c := s.SocketAt(14, 1, 5).ID
	if d := s.Distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if s.Distance(a, b) != s.Distance(b, a) {
		t.Error("distance not symmetric")
	}
	if math.Abs(s.Distance(a, b).Inches()-1.6) > 1e-9 {
		t.Errorf("adjacent distance = %v in, want 1.6", s.Distance(a, b).Inches())
	}
	if s.Distance(a, c) <= s.Distance(a, b) {
		t.Error("far corner not farther than neighbor")
	}
}

func TestCoupledPair(t *testing.T) {
	p := CoupledPair()
	if p.NumSockets() != 2 {
		t.Fatalf("coupled pair sockets = %d", p.NumSockets())
	}
	up := p.SocketAt(0, 0, 0).ID
	down := p.SocketAt(0, 0, 1).ID
	if p.Sink(up) != chipmodel.Sink18Fin || p.Sink(down) != chipmodel.Sink30Fin {
		t.Error("coupled pair sinks wrong")
	}
	if len(p.Downstream(up)) != 1 || p.Downstream(up)[0] != down {
		t.Error("coupled pair has no downstream relation")
	}
}

func TestUncoupledPair(t *testing.T) {
	p := UncoupledPair()
	if p.NumSockets() != 2 {
		t.Fatalf("uncoupled pair sockets = %d", p.NumSockets())
	}
	a := p.SocketAt(0, 0, 0).ID
	b := p.SocketAt(0, 1, 0).ID
	// No airflow relation between the two.
	if len(p.Downstream(a)) != 0 || len(p.Upstream(b)) != 0 {
		t.Error("uncoupled pair has airflow relations")
	}
	// Same sink heterogeneity as the coupled pair.
	if p.Sink(a) != chipmodel.Sink18Fin || p.Sink(b) != chipmodel.Sink30Fin {
		t.Errorf("uncoupled pair sinks = %v/%v", p.Sink(a), p.Sink(b))
	}
}

func TestNewValidation(t *testing.T) {
	xs := []units.Meters{0, 0.1}
	sinks := []chipmodel.Sink{chipmodel.Sink18Fin, chipmodel.Sink30Fin}
	if _, err := New("bad", 0, 1, xs, sinks, 0.1, 0.1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New("bad", 1, 1, xs, sinks[:1], 0.1, 0.1); err == nil {
		t.Error("sink/depth mismatch accepted")
	}
	if _, err := New("bad", 1, 1, []units.Meters{0.1, 0.1}, sinks, 0.1, 0.1); err == nil {
		t.Error("non-increasing x positions accepted")
	}
}

func TestSocketIDsDense(t *testing.T) {
	s := SUT()
	for i, sk := range s.Sockets() {
		if int(sk.ID) != i {
			t.Fatalf("socket %d has ID %d", i, sk.ID)
		}
		if s.Socket(sk.ID) != sk {
			t.Fatalf("Socket(%d) round trip failed", sk.ID)
		}
	}
}

func TestDenseSystem(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 6, 12} {
		srv, err := DenseSystem("study", 180/depth, 1, depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if srv.NumSockets() != 180 {
			t.Errorf("depth %d: %d sockets", depth, srv.NumSockets())
		}
		if srv.DegreeOfCoupling() != depth {
			t.Errorf("depth %d: coupling %d", depth, srv.DegreeOfCoupling())
		}
		// The sink/spacing pattern must match the SUT's for shared depths.
		if depth >= 2 {
			if srv.Sink(srv.SocketAt(0, 0, 0).ID) != chipmodel.Sink18Fin ||
				srv.Sink(srv.SocketAt(0, 0, 1).ID) != chipmodel.Sink30Fin {
				t.Errorf("depth %d: sink pattern broken", depth)
			}
			if got := (srv.XPositions[1] - srv.XPositions[0]).Inches(); math.Abs(got-1.6) > 1e-9 {
				t.Errorf("depth %d: spacing %v", depth, got)
			}
		}
	}
}

func TestDenseSystemMatchesSUTAtDepth6(t *testing.T) {
	srv, err := DenseSystem("sut-like", 15, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sut := SUT()
	if srv.NumSockets() != sut.NumSockets() || srv.Depth != sut.Depth {
		t.Error("depth-6 dense system differs from the SUT")
	}
	for p := 0; p < 6; p++ {
		if srv.XPositions[p] != sut.XPositions[p] || srv.Sinks[p] != sut.Sinks[p] {
			t.Errorf("position %d differs from SUT", p)
		}
	}
}
