// Package geometry describes the physical organization of density optimized
// servers: rows of cartridges, airflow lanes, socket positions, zones, and
// heat-sink assignment. It is the shared vocabulary between the airflow
// model, the schedulers, and the metrics (front half / back half / even
// zones of Figures 12 and 13).
//
// The system under test (SUT) mirrors the HPE Moonshot ProLiant M700-class
// design of Section II/III: 15 rows, each with 3 cartridges in series along
// the airflow; each cartridge holds 4 sockets in a 2x2 arrangement, i.e. two
// airflow lanes with 2 sockets each. Air flows from zone 1 to zone 6. Odd
// zones carry the 18-fin heat sink, even zones the 30-fin sink. Sockets in
// the same cartridge sit 1.6 inches apart along the flow; adjacent sockets
// of neighboring cartridges are 3 inches apart.
package geometry

import (
	"fmt"
	"math"

	"densim/internal/chipmodel"
	"densim/internal/units"
)

// SocketID identifies a socket within a server; IDs are dense in
// [0, NumSockets).
type SocketID int

// Socket is one CPU socket's placement.
type Socket struct {
	ID   SocketID
	Row  int // cartridge row (vertical stack position)
	Lane int // airflow lane within the row
	Pos  int // index along the airflow direction, 0 = most upstream
}

// Server is a complete socket topology.
type Server struct {
	Name  string
	Rows  int
	Lanes int
	Depth int // sockets per lane along the airflow

	// XPositions holds the along-flow coordinate of each depth position.
	XPositions []units.Meters
	// Sinks holds the heat sink type of each depth position.
	Sinks []chipmodel.Sink
	// RowPitch and LanePitch position rows and lanes in space for distance
	// computations.
	RowPitch  units.Meters
	LanePitch units.Meters

	sockets     []Socket
	socketSinks []chipmodel.Sink // per-socket, defaulted from Sinks[pos]
	skus        []chipmodel.SKU  // per-socket part overrides; nil = all default
}

// New constructs a server topology. XPositions and sinks must each have one
// entry per depth position and XPositions must be strictly increasing.
func New(name string, rows, lanes int, xPositions []units.Meters, sinks []chipmodel.Sink, rowPitch, lanePitch units.Meters) (*Server, error) {
	depth := len(xPositions)
	switch {
	case rows <= 0 || lanes <= 0 || depth == 0:
		return nil, fmt.Errorf("geometry %s: empty topology %dx%dx%d", name, rows, lanes, depth)
	case len(sinks) != depth:
		return nil, fmt.Errorf("geometry %s: %d sinks for depth %d", name, len(sinks), depth)
	}
	for i := 1; i < depth; i++ {
		if xPositions[i] <= xPositions[i-1] {
			return nil, fmt.Errorf("geometry %s: x positions not increasing at %d", name, i)
		}
	}
	s := &Server{
		Name:       name,
		Rows:       rows,
		Lanes:      lanes,
		Depth:      depth,
		XPositions: append([]units.Meters(nil), xPositions...),
		Sinks:      append([]chipmodel.Sink(nil), sinks...),
		RowPitch:   rowPitch,
		LanePitch:  lanePitch,
	}
	s.sockets = make([]Socket, 0, rows*lanes*depth)
	for r := 0; r < rows; r++ {
		for l := 0; l < lanes; l++ {
			for p := 0; p < depth; p++ {
				s.sockets = append(s.sockets, Socket{
					ID:   SocketID(len(s.sockets)),
					Row:  r,
					Lane: l,
					Pos:  p,
				})
				s.socketSinks = append(s.socketSinks, sinks[p])
			}
		}
	}
	return s, nil
}

// NumSockets returns the socket count.
func (s *Server) NumSockets() int { return len(s.sockets) }

// Socket returns the socket with the given ID.
func (s *Server) Socket(id SocketID) Socket {
	return s.sockets[id]
}

// Sockets returns all sockets in ID order. The returned slice must not be
// modified.
func (s *Server) Sockets() []Socket { return s.sockets }

// SocketAt returns the socket at (row, lane, pos).
func (s *Server) SocketAt(row, lane, pos int) Socket {
	return s.sockets[(row*s.Lanes+lane)*s.Depth+pos]
}

// Zone returns the 1-based zone number of a socket (its depth position + 1),
// matching the paper's Figure 12 labeling.
func (s *Server) Zone(id SocketID) int { return s.sockets[id].Pos + 1 }

// Sink returns the heat sink type of a socket.
func (s *Server) Sink(id SocketID) chipmodel.Sink {
	return s.socketSinks[id]
}

// SetSink overrides the heat sink of one socket, for topologies where sinks
// vary within a depth position (e.g. the uncoupled control pair of Figure 3).
func (s *Server) SetSink(id SocketID, sink chipmodel.Sink) {
	s.socketSinks[id] = sink
}

// SKU returns the part variant installed at a socket (the zero SKU is the
// platform default part).
func (s *Server) SKU(id SocketID) chipmodel.SKU {
	if s.skus == nil {
		return chipmodel.SKU{}
	}
	return s.skus[id]
}

// SetSKU installs a part variant at one socket. Storage is lazy: a server
// that never sees an override carries no per-socket SKU state at all.
func (s *Server) SetSKU(id SocketID, sku chipmodel.SKU) {
	if s.skus == nil {
		if sku.IsZero() {
			return
		}
		s.skus = make([]chipmodel.SKU, len(s.sockets))
	}
	s.skus[id] = sku
}

// HasSKUs reports whether any socket carries a non-default part — the
// heterogeneity flag the simulator's fast paths key off.
func (s *Server) HasSKUs() bool {
	for _, sku := range s.skus {
		if !sku.IsZero() {
			return true
		}
	}
	return false
}

// IsFrontHalf reports whether the socket is in the front (upstream) half of
// the server: zones 1..ceil(depth/2).
func (s *Server) IsFrontHalf(id SocketID) bool {
	return s.sockets[id].Pos < (s.Depth+1)/2
}

// IsEvenZone reports whether the socket is in an even-numbered zone (the
// zones with the better 30-fin heat sink in the SUT).
func (s *Server) IsEvenZone(id SocketID) bool {
	return s.Zone(id)%2 == 0
}

// Position returns the socket's physical coordinates: x along the airflow,
// y across lanes, z up the row stack.
func (s *Server) Position(id SocketID) (x, y, z units.Meters) {
	sk := s.sockets[id]
	return s.XPositions[sk.Pos], units.Meters(float64(sk.Lane)) * s.LanePitch, units.Meters(float64(sk.Row)) * s.RowPitch
}

// Distance returns the Euclidean distance between two sockets.
func (s *Server) Distance(a, b SocketID) units.Meters {
	ax, ay, az := s.Position(a)
	bx, by, bz := s.Position(b)
	dx, dy, dz := float64(ax-bx), float64(ay-by), float64(az-bz)
	return units.Meters(math.Sqrt(dx*dx + dy*dy + dz*dz))
}

// Upstream returns the sockets strictly upstream of id in the same lane and
// row, nearest first.
func (s *Server) Upstream(id SocketID) []SocketID {
	sk := s.sockets[id]
	out := make([]SocketID, 0, sk.Pos)
	for p := sk.Pos - 1; p >= 0; p-- {
		out = append(out, s.SocketAt(sk.Row, sk.Lane, p).ID)
	}
	return out
}

// Downstream returns the sockets strictly downstream of id in the same lane
// and row, nearest first.
func (s *Server) Downstream(id SocketID) []SocketID {
	sk := s.sockets[id]
	out := make([]SocketID, 0, s.Depth-sk.Pos-1)
	for p := sk.Pos + 1; p < s.Depth; p++ {
		out = append(out, s.SocketAt(sk.Row, sk.Lane, p).ID)
	}
	return out
}

// Neighbors returns sockets adjacent to id: the same lane one position up or
// down the flow, the adjacent lane at the same position, and the adjacent
// rows at the same position. This is the neighborhood the Coolest-Neighbors
// scheduler inspects.
func (s *Server) Neighbors(id SocketID) []SocketID {
	sk := s.sockets[id]
	var out []SocketID
	if sk.Pos > 0 {
		out = append(out, s.SocketAt(sk.Row, sk.Lane, sk.Pos-1).ID)
	}
	if sk.Pos < s.Depth-1 {
		out = append(out, s.SocketAt(sk.Row, sk.Lane, sk.Pos+1).ID)
	}
	for _, dl := range []int{-1, 1} {
		if l := sk.Lane + dl; l >= 0 && l < s.Lanes {
			out = append(out, s.SocketAt(sk.Row, l, sk.Pos).ID)
		}
	}
	for _, dr := range []int{-1, 1} {
		if r := sk.Row + dr; r >= 0 && r < s.Rows {
			out = append(out, s.SocketAt(r, sk.Lane, sk.Pos).ID)
		}
	}
	return out
}

// RowSockets returns all sockets of one row in ID order.
func (s *Server) RowSockets(row int) []SocketID {
	out := make([]SocketID, 0, s.Lanes*s.Depth)
	for l := 0; l < s.Lanes; l++ {
		for p := 0; p < s.Depth; p++ {
			out = append(out, s.SocketAt(row, l, p).ID)
		}
	}
	return out
}

// DegreeOfCoupling returns the maximum number of sockets sharing one airflow
// lane — the paper's Table I metric.
func (s *Server) DegreeOfCoupling() int { return s.Depth }

// sutXPositions returns the along-flow socket coordinates of the M700-class
// row: cartridge k occupies positions 2k and 2k+1, 1.6 inches apart within
// the cartridge and with a 3 inch gap between adjacent sockets of
// neighboring cartridges.
func sutXPositions(cartridges int) []units.Meters {
	xs := make([]units.Meters, 0, cartridges*2)
	x := 0.0
	for c := 0; c < cartridges; c++ {
		if c > 0 {
			x += 3.0 // inches between cartridges' adjacent sockets
		}
		xs = append(xs, units.FromInches(x))
		x += 1.6 // inches within the cartridge
		xs = append(xs, units.FromInches(x))
	}
	return xs
}

// AlternatingSinks returns the SUT's heat-sink pattern for a lane of the
// given depth: 18-fin for odd zones and 30-fin for even zones (Section II).
func AlternatingSinks(depth int) []chipmodel.Sink {
	sinks := make([]chipmodel.Sink, depth)
	for i := range sinks {
		if (i+1)%2 == 0 {
			sinks[i] = chipmodel.Sink30Fin
		} else {
			sinks[i] = chipmodel.Sink18Fin
		}
	}
	return sinks
}

// UniformSinks returns the same heat sink at every depth position — the
// homogeneous pattern of conventional (uncoupled) chassis.
func UniformSinks(depth int, sink chipmodel.Sink) []chipmodel.Sink {
	sinks := make([]chipmodel.Sink, depth)
	for i := range sinks {
		sinks[i] = sink
	}
	return sinks
}

// SUT builds the paper's 180-socket system under test: 15 rows x 2 lanes x
// 6 zones (3 cartridges of 2x2 sockets in series).
func SUT() *Server {
	s, err := New("moonshot-m700-sut", 15, 2, sutXPositions(3), AlternatingSinks(6),
		units.FromInches(7.0/15), units.FromInches(2.5))
	if err != nil {
		panic("geometry: SUT construction failed: " + err.Error())
	}
	return s
}

// DenseSystem builds a homogeneous density optimized topology with the
// M700-style cartridge pattern generalized to an arbitrary degree of
// coupling: depth sockets per lane along the airflow (alternating
// 18-fin/30-fin sinks and 1.6in/3.0in spacing), rows*lanes independent
// lanes. It is the substrate for coupling-degree design studies: the same
// socket count arranged from fully uncoupled (depth 1) to deeply coupled
// chains.
func DenseSystem(name string, rows, lanes, depth int) (*Server, error) {
	return DenseSystemWithSinks(name, rows, lanes, depth, AlternatingSinks(depth))
}

// DenseSystemWithSinks is DenseSystem with an explicit per-depth heat-sink
// pattern (one entry per depth position) — the scenario layer's topology
// substrate for density sweeps with homogeneous sinks.
func DenseSystemWithSinks(name string, rows, lanes, depth int, sinks []chipmodel.Sink) (*Server, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("geometry %s: non-positive depth %d", name, depth)
	}
	cartridges := (depth + 1) / 2
	xs := sutXPositions(cartridges)[:depth]
	return New(name, rows, lanes, xs, sinks,
		units.FromInches(7.0/15), units.FromInches(2.5))
}

// CoupledPair builds the 2-socket thermally coupled system of Figure 3(a):
// one lane, an 18-fin socket upstream of a 30-fin socket, 1.6 inches apart.
func CoupledPair() *Server {
	s, err := New("coupled-pair", 1, 1,
		[]units.Meters{0, units.FromInches(1.6)},
		[]chipmodel.Sink{chipmodel.Sink18Fin, chipmodel.Sink30Fin},
		units.FromInches(1.75), units.FromInches(2.5))
	if err != nil {
		panic("geometry: CoupledPair construction failed: " + err.Error())
	}
	return s
}

// UncoupledPair builds the control system of Figure 3(a): the same two
// sockets side by side in separate lanes, each receiving inlet air — the
// traditional 1U arrangement.
func UncoupledPair() *Server {
	s, err := New("uncoupled-pair", 1, 2,
		[]units.Meters{0},
		[]chipmodel.Sink{chipmodel.Sink18Fin},
		units.FromInches(1.75), units.FromInches(2.5))
	if err != nil {
		panic("geometry: UncoupledPair construction failed: " + err.Error())
	}
	// Same heterogeneous sinks as the coupled pair: lane 1 gets the 30-fin.
	s.SetSink(s.SocketAt(0, 1, 0).ID, chipmodel.Sink30Fin)
	return s
}
