module densim

go 1.22
