// Package densim_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its table once (first iteration) and reports the
// regeneration cost. The simulation-backed figures (3, 11, 13, 14, 15) share
// one memoizing runner with the Quick preset; set DENSIM_BENCH_FULL=1 to use
// the paper-faithful Full preset (30 s socket time constant, long windows —
// expect a long run). EXPERIMENTS.md records the outputs.
package densim_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"densim/internal/experiments"
	"densim/internal/report"
)

var (
	runnerOnce sync.Once
	benchRun   *experiments.Runner
	benchOpts  experiments.SimOptions
)

func runner() *experiments.Runner {
	runnerOnce.Do(func() {
		benchOpts = experiments.Quick()
		if os.Getenv("DENSIM_BENCH_FULL") != "" {
			benchOpts = experiments.Full()
		}
		benchRun = experiments.NewRunner(benchOpts)
	})
	return benchRun
}

// printOnce renders a table on the benchmark's first iteration only.
func printOnce(i int, t *report.Table) {
	if i == 0 {
		fmt.Println()
		fmt.Println(t)
	}
}

func BenchmarkFig01ServerDensityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Fig1(7)
		printOnce(i, t)
	}
}

func BenchmarkTable01SystemInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Table1()
		printOnce(i, t)
	}
}

func BenchmarkTable02AirflowRequirements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Table2()
		printOnce(i, t)
	}
}

func BenchmarkFig02CartridgeAirflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkFig03CoupledVsUncoupled(b *testing.B) {
	runner() // establish benchOpts
	for i := 0; i < b.N; i++ {
		res, t, err := experiments.Fig3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		if i == 0 {
			fmt.Printf("CF/HF uncoupled: %.3f (paper ~1.08)   HF/CF coupled: %.3f (paper ~1.05)\n",
				res.CFOverHFUncoupled, res.HFOverCFCoupled)
		}
	}
}

func BenchmarkFig05EntryTemperatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, t := experiments.Fig5()
		if len(pts) != 125 {
			b.Fatal("unexpected sweep size")
		}
		if i == 0 {
			// The full 125-row table is long; print the headline subset.
			sub := &report.Table{Title: t.Title + " (15W rows)", Header: t.Header}
			for _, row := range t.Rows {
				if row[0] == "15.000" {
					sub.Rows = append(sub.Rows, row)
				}
			}
			printOnce(i, sub)
		}
	}
}

func BenchmarkFig06JobDurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Fig6()
		printOnce(i, t)
	}
}

func BenchmarkFig07PowerPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Fig7()
		printOnce(i, t)
	}
}

func BenchmarkFig09DetailedThermalModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, t, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		if i == 0 {
			s := experiments.SummarizeFig9(rows)
			fmt.Printf("on-die dT range [%.2f, %.2f]C (paper: 4-7C); 30-fin advantage %.1fC hi / %.1fC lo (paper: 6-7C / 3-4C)\n",
				s.MinDelta, s.MaxDelta, s.SinkAdvantageHigh, s.SinkAdvantageLow)
		}
	}
}

func BenchmarkFig10ModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, t, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		if i == 0 {
			fmt.Printf("max |Eq.1 - detailed| = %.2fC (paper: within 2C)\n",
				experiments.MaxAbsError(rows))
		}
	}
}

func BenchmarkTable03Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(i, experiments.Table3())
	}
}

func BenchmarkFig11ExistingSchedulers(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Fig11(r)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkFig12ZoneOrganization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Fig12()
		printOnce(i, t)
	}
}

func BenchmarkFig13RegionBreakdown(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Fig13(r)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkFig14RelativePerformance(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Fig14(r, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkFig15EnergyDelaySquared(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Fig15(r, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

// Extension benches: the design-choice ablations DESIGN.md calls out and the
// migration extension from the paper's future work.

func BenchmarkAblationCP(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.AblationCP(r, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkAblationBoostGovernor(b *testing.B) {
	runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.AblationBoost(benchOpts, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkExtensionMigration(b *testing.B) {
	runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.MigrationStudy(benchOpts, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkExtensionCouplingDegree(b *testing.B) {
	runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.CouplingDegreeStudy(benchOpts, 0.7, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}

func BenchmarkFig04EntryTemperatureStaircase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t := experiments.Fig4()
		printOnce(i, t)
	}
}

func BenchmarkHeadlineSummary(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		_, t, err := experiments.Headline(r, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
	}
}
